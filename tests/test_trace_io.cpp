#include "sim/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sim/timing_sim.h"

namespace sudoku::sim {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  std::string tmp_path() {
    return ::testing::TempDir() + "trace_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".txt";
  }
};

TEST_F(TraceIoTest, RoundTripPreservesAccesses) {
  GeneratorSource gen(find_benchmark("gcc"), 0, 42);
  const std::string path = tmp_path();
  ASSERT_TRUE(write_trace(path, gen, 500));

  GeneratorSource ref(find_benchmark("gcc"), 0, 42);
  TraceFileReader reader(path);
  EXPECT_EQ(reader.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    const auto a = ref.next();
    const auto b = reader.next();
    ASSERT_EQ(a.addr, b.addr) << i;
    ASSERT_EQ(a.is_write, b.is_write) << i;
    ASSERT_EQ(a.gap_instructions, b.gap_instructions) << i;
  }
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, ReaderLoopsAtEnd) {
  const std::string path = tmp_path();
  {
    std::ofstream out(path);
    out << "5 R 1000\n10 W 2040\n";
  }
  TraceFileReader reader(path);
  EXPECT_EQ(reader.size(), 2u);
  const auto a = reader.next();
  const auto b = reader.next();
  const auto c = reader.next();  // wraps
  EXPECT_EQ(a.addr, 0x1000u);
  EXPECT_FALSE(a.is_write);
  EXPECT_EQ(b.addr, 0x2040u);
  EXPECT_TRUE(b.is_write);
  EXPECT_EQ(c.addr, a.addr);
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, CommentsAndBlankLinesIgnored) {
  const std::string path = tmp_path();
  {
    std::ofstream out(path);
    out << "# header comment\n\n5 R 10 # trailing comment\n\n";
  }
  TraceFileReader reader(path);
  EXPECT_EQ(reader.size(), 1u);
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, MalformedLineThrows) {
  const std::string path = tmp_path();
  {
    std::ofstream out(path);
    out << "5 X 10\n";
  }
  EXPECT_THROW(TraceFileReader{path}, std::runtime_error);
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW(TraceFileReader{"/nonexistent/trace.txt"}, std::runtime_error);
}

TEST_F(TraceIoTest, EmptyTraceThrows) {
  const std::string path = tmp_path();
  {
    std::ofstream out(path);
    out << "# only comments\n";
  }
  EXPECT_THROW(TraceFileReader{path}, std::runtime_error);
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, MakeSourceDispatchesOnPrefix) {
  const std::string path = tmp_path();
  {
    std::ofstream out(path);
    out << "1 R 40\n";
  }
  const auto file_src = make_source("file:" + path, 0, 1);
  EXPECT_EQ(file_src->next().addr, 0x40u);
  const auto gen_src = make_source("mcf", 0, 1);
  EXPECT_EQ(gen_src->name(), "mcf");
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, TimingSimulatorRunsFromTraceFile) {
  // End-to-end: materialise a synthetic trace, then drive the timing
  // simulator from the file instead of the generator.
  const std::string path = tmp_path();
  GeneratorSource gen(find_benchmark("omnetpp"), 0, 9);
  ASSERT_TRUE(write_trace(path, gen, 2000));

  SimConfig cfg;
  cfg.num_cores = 2;
  cfg.instructions_per_core = 50'000;
  cfg.llc.size_bytes = 2ull << 20;
  const auto res = TimingSimulator(cfg).run({"file:" + path});
  EXPECT_GT(res.total_time_ns, 0.0);
  EXPECT_GT(res.llc.accesses, 0u);
  for (const auto& core : res.cores) {
    EXPECT_GE(core.instructions, cfg.instructions_per_core);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Ramulator2/DRAMsim-style reader ("ram:" spec): strict-grammar battery.

class Ram2TraceTest : public TraceIoTest {
 protected:
  std::string write_file(const std::string& body) {
    const std::string path = tmp_path();
    std::ofstream out(path);
    out << body;
    return path;
  }
};

TEST_F(Ram2TraceTest, ParsesNoCycleFormatWithOpcodeAliases) {
  const std::string path = write_file(
      "# header\n"
      "0x1000 R\n"
      "0x1040 LD\n"
      "0x2000 W\n"
      "0x2040 ST\n"
      "0x3000 READ\n"
      "0x3040 WRITE\n");
  Ramulator2TraceReader reader(path);
  EXPECT_EQ(reader.size(), 6u);
  EXPECT_FALSE(reader.has_cycles());
  const bool expect_write[] = {false, false, true, true, false, true};
  const std::uint64_t expect_addr[] = {0x1000, 0x1040, 0x2000,
                                       0x2040, 0x3000, 0x3040};
  for (int i = 0; i < 6; ++i) {
    const auto acc = reader.next();
    EXPECT_EQ(acc.addr, expect_addr[i]) << i;
    EXPECT_EQ(acc.is_write, expect_write[i]) << i;
    // Without a cycle column requests are back-to-back.
    EXPECT_EQ(acc.gap_instructions, 0u) << i;
  }
  std::remove(path.c_str());
}

TEST_F(Ram2TraceTest, CycleColumnBecomesGapDeltas) {
  const std::string path = write_file(
      "0x100 R 100\n"
      "0x140 R 130\n"
      "0x180 W 130\n"   // equal cycle: gap 0 is legal
      "0x1c0 R 200\n");
  Ramulator2TraceReader reader(path);
  ASSERT_EQ(reader.size(), 4u);
  EXPECT_TRUE(reader.has_cycles());
  EXPECT_EQ(reader.next().gap_instructions, 0u);   // first record
  EXPECT_EQ(reader.next().gap_instructions, 30u);
  EXPECT_EQ(reader.next().gap_instructions, 0u);
  EXPECT_EQ(reader.next().gap_instructions, 70u);
  std::remove(path.c_str());
}

TEST_F(Ram2TraceTest, LoopsOnExhaustion) {
  const std::string path = write_file("0xa0 R\n0xb0 W\n");
  Ramulator2TraceReader reader(path);
  const auto a = reader.next();
  reader.next();
  const auto c = reader.next();  // wraps to the first record
  EXPECT_EQ(c.addr, a.addr);
  EXPECT_EQ(c.is_write, a.is_write);
  std::remove(path.c_str());
}

// Each malformed shape must raise std::runtime_error with a path:line
// diagnostic, not be silently skipped or prefix-parsed.
TEST_F(Ram2TraceTest, MalformedTracesThrowWithDiagnostics) {
  const struct {
    const char* label;
    const char* body;
  } kCases[] = {
      {"truncated record", "0x1000\n"},
      {"bad opcode", "0x1000 X\n"},
      {"lowercase opcode", "0x1000 r\n"},
      {"missing 0x prefix", "1000 R\n"},
      {"non-hex address", "0xZZZZ R\n"},
      {"hex junk suffix", "0x12fg R\n"},
      {"address overflow", "0x10000000000000000 R\n"},
      {"trailing junk", "0x1000 R 5 extra\n"},
      {"bad cycle", "0x1000 R notanumber\n"},
      {"cycle overflow", "0x1000 R 99999999999999999999\n"},
      {"decreasing cycle", "0x1000 R 100\n0x1040 R 50\n"},
      {"cycle column appears late", "0x1000 R\n0x1040 R 10\n"},
      {"cycle column disappears", "0x1000 R 10\n0x1040 R\n"},
      {"empty file", ""},
      {"comment-only file", "# nothing here\n\n# still nothing\n"},
  };
  for (const auto& c : kCases) {
    const std::string path = write_file(c.body);
    try {
      Ramulator2TraceReader reader(path);
      FAIL() << "expected throw for: " << c.label;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
          << c.label << ": diagnostic should name the file, got: " << e.what();
    }
    std::remove(path.c_str());
  }
  EXPECT_THROW(Ramulator2TraceReader{"/nonexistent/trace.txt"},
               std::runtime_error);
}

TEST_F(Ram2TraceTest, CheckedInTracesParse) {
  Ramulator2TraceReader ai(std::string(SUDOKU_TRACES_DIR) + "/ai_stream.trace");
  EXPECT_FALSE(ai.has_cycles());
  EXPECT_GE(ai.size(), 64u);
  Ramulator2TraceReader hpc(std::string(SUDOKU_TRACES_DIR) + "/hpc_mix.trace");
  EXPECT_TRUE(hpc.has_cycles());
  EXPECT_GE(hpc.size(), 64u);
}

TEST_F(Ram2TraceTest, MakeSourceRamPrefixDispatches) {
  const std::string path = write_file("0x40 R\n");
  const auto src = make_source("ram:" + path, 0, 1);
  EXPECT_EQ(src->next().addr, 0x40u);
  EXPECT_EQ(src->name(), path);
  std::remove(path.c_str());
}

TEST_F(Ram2TraceTest, TimingSimulatorRunsFromRamTraceWithRegionEcc) {
  // End-to-end: the streaming trace drives the sim with the large-codeword
  // region path enabled; the sequential stream should mostly reuse open
  // regions (decode hiding), so buffer hits dominate opens.
  SimConfig cfg;
  cfg.num_cores = 2;
  cfg.instructions_per_core = 20'000;
  cfg.llc.size_bytes = 2ull << 20;
  cfg.region.enabled = true;
  cfg.region.region_bytes = 1024;
  cfg.region.parity_bits = 84;
  const auto res = TimingSimulator(cfg).run(
      {"ram:" + std::string(SUDOKU_TRACES_DIR) + "/ai_stream.trace"});
  EXPECT_GT(res.total_time_ns, 0.0);
  EXPECT_GT(res.region_opens, 0u);
  EXPECT_GT(res.region_buffer_hits, res.region_opens);
  EXPECT_GT(res.region_bandwidth_amplification(), 1.0);
}

}  // namespace
}  // namespace sudoku::sim
