#include "sim/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sim/timing_sim.h"

namespace sudoku::sim {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  std::string tmp_path() {
    return ::testing::TempDir() + "trace_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".txt";
  }
};

TEST_F(TraceIoTest, RoundTripPreservesAccesses) {
  GeneratorSource gen(find_benchmark("gcc"), 0, 42);
  const std::string path = tmp_path();
  ASSERT_TRUE(write_trace(path, gen, 500));

  GeneratorSource ref(find_benchmark("gcc"), 0, 42);
  TraceFileReader reader(path);
  EXPECT_EQ(reader.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    const auto a = ref.next();
    const auto b = reader.next();
    ASSERT_EQ(a.addr, b.addr) << i;
    ASSERT_EQ(a.is_write, b.is_write) << i;
    ASSERT_EQ(a.gap_instructions, b.gap_instructions) << i;
  }
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, ReaderLoopsAtEnd) {
  const std::string path = tmp_path();
  {
    std::ofstream out(path);
    out << "5 R 1000\n10 W 2040\n";
  }
  TraceFileReader reader(path);
  EXPECT_EQ(reader.size(), 2u);
  const auto a = reader.next();
  const auto b = reader.next();
  const auto c = reader.next();  // wraps
  EXPECT_EQ(a.addr, 0x1000u);
  EXPECT_FALSE(a.is_write);
  EXPECT_EQ(b.addr, 0x2040u);
  EXPECT_TRUE(b.is_write);
  EXPECT_EQ(c.addr, a.addr);
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, CommentsAndBlankLinesIgnored) {
  const std::string path = tmp_path();
  {
    std::ofstream out(path);
    out << "# header comment\n\n5 R 10 # trailing comment\n\n";
  }
  TraceFileReader reader(path);
  EXPECT_EQ(reader.size(), 1u);
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, MalformedLineThrows) {
  const std::string path = tmp_path();
  {
    std::ofstream out(path);
    out << "5 X 10\n";
  }
  EXPECT_THROW(TraceFileReader{path}, std::runtime_error);
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW(TraceFileReader{"/nonexistent/trace.txt"}, std::runtime_error);
}

TEST_F(TraceIoTest, EmptyTraceThrows) {
  const std::string path = tmp_path();
  {
    std::ofstream out(path);
    out << "# only comments\n";
  }
  EXPECT_THROW(TraceFileReader{path}, std::runtime_error);
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, MakeSourceDispatchesOnPrefix) {
  const std::string path = tmp_path();
  {
    std::ofstream out(path);
    out << "1 R 40\n";
  }
  const auto file_src = make_source("file:" + path, 0, 1);
  EXPECT_EQ(file_src->next().addr, 0x40u);
  const auto gen_src = make_source("mcf", 0, 1);
  EXPECT_EQ(gen_src->name(), "mcf");
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, TimingSimulatorRunsFromTraceFile) {
  // End-to-end: materialise a synthetic trace, then drive the timing
  // simulator from the file instead of the generator.
  const std::string path = tmp_path();
  GeneratorSource gen(find_benchmark("omnetpp"), 0, 9);
  ASSERT_TRUE(write_trace(path, gen, 2000));

  SimConfig cfg;
  cfg.num_cores = 2;
  cfg.instructions_per_core = 50'000;
  cfg.llc.size_bytes = 2ull << 20;
  const auto res = TimingSimulator(cfg).run({"file:" + path});
  EXPECT_GT(res.total_time_ns, 0.0);
  EXPECT_GT(res.llc.accesses, 0u);
  for (const auto& core : res.cores) {
    EXPECT_GE(core.instructions, cfg.instructions_per_core);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sudoku::sim
