// Fault-tolerance layer: atomic file publication, the JSON parser the
// checkpoint codecs rely on, the CheckpointStore, round-trip-exact shard
// payload codecs, and the headline property — a run killed after (or in
// the middle of) K shards and then resumed produces the same merged result
// bit for bit, for any K and any thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>

#include "exp/atomic_file.h"
#include "exp/checkpoint.h"
#include "exp/json_parse.h"
#include "exp/mc_experiments.h"
#include "exp/metrics_io.h"
#include "exp/result_sink.h"
#include "exp/shutdown.h"
#include "reliability/montecarlo.h"

namespace sudoku::exp {
namespace {

using reliability::McConfig;
using reliability::McResult;

std::filesystem::path fresh_dir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("sudoku_ckpt_test_" + tag);
  std::filesystem::remove_all(dir);
  return dir;
}

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// ---- atomic_write_file -------------------------------------------------

TEST(AtomicFile, WritesAndOverwritesWithoutTempLeftovers) {
  const auto dir = fresh_dir("atomic");
  std::filesystem::create_directories(dir);
  const auto path = dir / "payload.json";
  atomic_write_file(path, "first");
  EXPECT_EQ(slurp(path), "first");
  atomic_write_file(path, "second version");
  EXPECT_EQ(slurp(path), "second version");
  // rename() published the file; no temp siblings may remain.
  std::size_t entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
  std::filesystem::remove_all(dir);
}

TEST(AtomicFile, ThrowsWhenDirectoryMissing) {
  const auto dir = fresh_dir("atomic_missing");  // never created
  EXPECT_THROW(atomic_write_file(dir / "x.json", "data"), std::runtime_error);
}

// Cross-process contract (docs/fleet.md): rename(2) replaces the target
// atomically, so concurrent publishers of the same path — fleet siblings
// emitting the same artifact — always leave one COMPLETE payload behind,
// never a mix, and their pid/thread-unique temp files never collide.
TEST(AtomicFile, ConcurrentWritersLeaveOneCompletePayload) {
  const auto dir = fresh_dir("atomic_race");
  std::filesystem::create_directories(dir);
  const auto path = dir / "artifact.json";
  const std::string payloads[2] = {std::string(4096, 'A'),
                                   std::string(4096, 'B')};
  std::thread writers[2];
  for (int w = 0; w < 2; ++w) {
    writers[w] = std::thread([&, w] {
      for (int i = 0; i < 50; ++i) atomic_write_file(path, payloads[w]);
    });
  }
  for (auto& t : writers) t.join();
  const std::string final = slurp(path);
  EXPECT_TRUE(final == payloads[0] || final == payloads[1]);
  // Nothing staged left behind: the only directory entry is the artifact.
  std::size_t entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
  std::filesystem::remove_all(dir);
}

TEST(AtomicFile, ExclusiveCreateIsAnExclusiveAtom) {
  const auto dir = fresh_dir("atomic_excl");
  std::filesystem::create_directories(dir);
  const auto path = dir / "claim";
  EXPECT_TRUE(atomic_create_file(path, "owner-1"));
  EXPECT_FALSE(atomic_create_file(path, "owner-2"));  // exists -> refused
  EXPECT_EQ(slurp(path), "owner-1");                  // loser changed nothing
  std::filesystem::remove(path);
  EXPECT_TRUE(atomic_create_file(path, "owner-3"));
  // Unlike atomic_write_file, a missing parent directory is an error the
  // caller must hear about (the claim would silently never exist).
  EXPECT_THROW(atomic_create_file(dir / "no_dir" / "claim", "x"),
               std::runtime_error);
  std::filesystem::remove_all(dir);
}

// ---- json_parse --------------------------------------------------------

TEST(JsonParse, LargeU64SurvivesExactly) {
  // 2^64-1 is not representable as a double; the parser must keep the raw
  // digits so checkpointed counters round-trip exactly.
  const auto v = json_parse("{\"n\":18446744073709551615}");
  ASSERT_TRUE(v.has_value());
  const JsonValue* n = v->find("n");
  ASSERT_NE(n, nullptr);
  ASSERT_TRUE(n->as_u64().has_value());
  EXPECT_EQ(*n->as_u64(), 18446744073709551615ull);
}

TEST(JsonParse, DoublesReparseBitExactly) {
  const double values[] = {0.0, 0.1, 5.3e-6, 1e-300, -2.5e17,
                           3.141592653589793, 1.0 / 3.0};
  for (const double d : values) {
    JsonObject o;
    o.set("x", d);
    const auto v = json_parse(o.str());
    ASSERT_TRUE(v.has_value()) << o.str();
    const JsonValue* x = v->find("x");
    ASSERT_NE(x, nullptr);
    ASSERT_TRUE(x->as_double().has_value());
    EXPECT_EQ(*x->as_double(), d) << o.str();
  }
}

TEST(JsonParse, StringsUnescapeAndNestingWorks) {
  const auto v = json_parse(
      "{\"s\":\"a\\n\\\"b\\\"\\u0041\",\"arr\":[1,{\"k\":true},null]}");
  ASSERT_TRUE(v.has_value());
  const JsonValue* s = v->find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->scalar, "a\n\"b\"A");
  const JsonValue* arr = v->find("arr");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->items.size(), 3u);
  const JsonValue* k = arr->items[1].find("k");
  ASSERT_NE(k, nullptr);
  EXPECT_TRUE(k->boolean);
}

TEST(JsonParse, MalformedInputsReturnNulloptNotThrow) {
  const char* bad[] = {
      "",
      "{",
      "{\"a\":}",
      "{\"a\":1,}",
      "[1 2]",
      "{\"a\" 1}",
      "\"unterminated",
      "tru",
      "1e",
      "{\"a\":1}trailing",
      "{\"\\ud800\":1}",  // lone surrogate escape
  };
  for (const char* text : bad) {
    std::string error;
    EXPECT_FALSE(json_parse(text, &error).has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(JsonParse, U64RejectsNonIntegers) {
  const auto v = json_parse("{\"a\":-1,\"b\":1.5,\"c\":1e3,\"d\":7}");
  ASSERT_TRUE(v.has_value());
  EXPECT_FALSE(v->find("a")->as_u64().has_value());
  EXPECT_FALSE(v->find("b")->as_u64().has_value());
  EXPECT_FALSE(v->find("c")->as_u64().has_value());
  EXPECT_EQ(v->find("d")->as_u64().value(), 7u);
}

TEST(JsonParse, DepthGuardStopsRunawayNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(json_parse(deep).has_value());
}

// ---- CheckpointStore ---------------------------------------------------

TEST(CheckpointStore, SaveThenLoadRoundTripsUnderResume) {
  const auto root = fresh_dir("store");
  const CheckpointKey key{"unit test/exp", 0xabcdef0123456789ull, 42};
  {
    const CheckpointStore writer(root, /*resume=*/false);
    writer.save(key, 3, "{\"payload\":1}");
    // resume off: the store persists but never replays.
    EXPECT_FALSE(writer.load(key, 3).has_value());
  }
  const CheckpointStore reader(root, /*resume=*/true);
  const auto payload = reader.load(key, 3);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "{\"payload\":1}");
  EXPECT_FALSE(reader.load(key, 4).has_value());  // absent shard
  // A different config hash is a different directory — structural miss.
  CheckpointKey other = key;
  other.config_hash ^= 1;
  EXPECT_FALSE(reader.load(other, 3).has_value());
  std::filesystem::remove_all(root);
}

TEST(CheckpointStore, SanitizesExperimentNameIntoPath) {
  const CheckpointKey key{"table11.RAID-6+CRC-31/x", 1, 2};
  const std::string sub = key.subdir();
  EXPECT_EQ(sub.find(".."), std::string::npos);
  // Exactly one separator: between experiment dir and the hash-seed dir.
  EXPECT_EQ(std::count(sub.begin(), sub.end(), '/'), 1);
  EXPECT_NE(sub.find("0000000000000001-s2"), std::string::npos);
}

// ---- payload codecs ----------------------------------------------------

McResult small_real_result() {
  McConfig cfg;
  cfg.cache.num_lines = 1ull << 12;
  cfg.cache.group_size = 64;
  cfg.cache.ber = 2e-4;
  cfg.level = SudokuLevel::kX;
  cfg.max_intervals = 40;
  cfg.seed = 11;
  return run_montecarlo_parallel(cfg, {.threads = 2, .chunk = 8});
}

TEST(CheckpointCodec, McResultRoundTripsBitExactly) {
  const McResult r = small_real_result();
  EXPECT_GT(r.faults_injected, 0u);
  const std::string payload = encode_mc_result(r);
  const auto back = decode_mc_result(payload);
  ASSERT_TRUE(back.has_value());
  // Bit-exactness witnessed through the canonical serialization, which
  // covers every counter and the full metrics registry.
  EXPECT_EQ(encode_mc_result(*back), payload);
}

TEST(CheckpointCodec, RejectsTornAndAlienPayloads) {
  const std::string payload = encode_mc_result(small_real_result());
  EXPECT_FALSE(decode_mc_result("").has_value());
  EXPECT_FALSE(decode_mc_result("not json").has_value());
  EXPECT_FALSE(decode_mc_result(payload.substr(0, payload.size() / 2)).has_value());
  EXPECT_FALSE(decode_mc_result("{\"v\":999}").has_value());
  EXPECT_FALSE(decode_mc_result("{\"v\":1,\"intervals\":5}").has_value());
  // Baseline decoder must not accept an MC payload (missing fields).
  EXPECT_FALSE(decode_baseline_mc_result(payload).has_value());
}

// ---- kill-and-resume determinism ---------------------------------------

McConfig resume_config() {
  McConfig cfg;
  cfg.cache.num_lines = 1ull << 12;
  cfg.cache.group_size = 64;
  cfg.cache.ber = 2e-4;
  cfg.level = SudokuLevel::kX;
  cfg.max_intervals = 160;  // 20 shards of 8
  cfg.seed = 23;
  return cfg;
}

class ShutdownGuard : public ::testing::Test {
 protected:
  void SetUp() override { reset_shutdown(); }
  void TearDown() override { reset_shutdown(); }
};

using CheckpointResume = ShutdownGuard;

TEST_F(CheckpointResume, KillAfterKShardsThenResumeIsBitIdentical) {
  const auto cfg = resume_config();
  const std::string reference = encode_mc_result(
      run_montecarlo_parallel(cfg, {.threads = 1, .chunk = 8}));

  for (const unsigned threads : {1u, 8u}) {
    for (const std::uint64_t K : {std::uint64_t{1}, std::uint64_t{2}, std::uint64_t{5}}) {
      const auto root = fresh_dir("resume_k" + std::to_string(K) + "_t" +
                                  std::to_string(threads));
      CheckpointStore store(root, /*resume=*/true);
      reset_shutdown();

      // Phase 1: request shutdown after K live shards complete.
      std::atomic<std::uint64_t> done{0};
      ShardRunReport killed;
      ExpOptions opts;
      opts.threads = threads;
      opts.chunk = 8;
      opts.checkpoint = &store;
      opts.report = &killed;
      opts.after_shard = [&done, K](const Shard&) {
        if (done.fetch_add(1) + 1 >= K) request_shutdown();
      };
      (void)run_montecarlo_parallel(cfg, opts);
      EXPECT_GE(done.load(), K);
      EXPECT_TRUE(killed.interrupted)
          << "K=" << K << " threads=" << threads;

      // Phase 2: resume without the kill hook.
      reset_shutdown();
      ShardRunReport resumed;
      ExpOptions ropts;
      ropts.threads = threads;
      ropts.chunk = 8;
      ropts.checkpoint = &store;
      ropts.report = &resumed;
      const auto r = run_montecarlo_parallel(cfg, ropts);
      EXPECT_EQ(encode_mc_result(r), reference)
          << "K=" << K << " threads=" << threads;
      EXPECT_GE(resumed.shards_resumed, K);
      EXPECT_FALSE(resumed.interrupted);
      std::filesystem::remove_all(root);
    }
  }
}

TEST_F(CheckpointResume, MidShardKillFromBackgroundThreadIsResumable) {
  const auto cfg = resume_config();
  const std::string reference = encode_mc_result(
      run_montecarlo_parallel(cfg, {.threads = 1, .chunk = 8}));

  const auto root = fresh_dir("resume_midshard");
  CheckpointStore store(root, /*resume=*/true);
  // Fire the signal asynchronously, mid-run: in-flight shards abandon
  // through their stop hooks, whatever finished stays checkpointed.
  std::thread killer([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    request_shutdown();
  });
  ExpOptions opts;
  opts.threads = 4;
  opts.chunk = 8;
  opts.checkpoint = &store;
  (void)run_montecarlo_parallel(cfg, opts);
  killer.join();

  reset_shutdown();
  ExpOptions ropts;
  ropts.threads = 4;
  ropts.chunk = 8;
  ropts.checkpoint = &store;
  const auto r = run_montecarlo_parallel(cfg, ropts);
  EXPECT_EQ(encode_mc_result(r), reference);
  std::filesystem::remove_all(root);
}

TEST_F(CheckpointResume, ConfigChangeColdStartsInsteadOfReplaying) {
  auto cfg = resume_config();
  const auto root = fresh_dir("resume_invalidate");
  CheckpointStore store(root, /*resume=*/true);
  ExpOptions opts;
  opts.threads = 2;
  opts.chunk = 8;
  opts.checkpoint = &store;
  (void)run_montecarlo_parallel(cfg, opts);  // full run, all shards saved

  cfg.cache.ber = 3e-4;  // any config delta => different hash directory
  ShardRunReport report;
  ExpOptions ropts = opts;
  ropts.report = &report;
  (void)run_montecarlo_parallel(cfg, ropts);
  EXPECT_EQ(report.shards_resumed, 0u);
  std::filesystem::remove_all(root);
}

TEST_F(CheckpointResume, CorruptShardFileIsRecomputedNotFatal) {
  const auto cfg = resume_config();
  const std::string reference = encode_mc_result(
      run_montecarlo_parallel(cfg, {.threads = 1, .chunk = 8}));

  const auto root = fresh_dir("resume_corrupt");
  CheckpointStore store(root, /*resume=*/true);
  ExpOptions opts;
  opts.threads = 2;
  opts.chunk = 8;
  opts.checkpoint = &store;
  (void)run_montecarlo_parallel(cfg, opts);

  // Mangle one shard payload on disk.
  bool mangled = false;
  for (const auto& e : std::filesystem::recursive_directory_iterator(root)) {
    if (e.is_regular_file()) {
      std::ofstream(e.path(), std::ios::trunc) << "{torn";
      mangled = true;
      break;
    }
  }
  ASSERT_TRUE(mangled);

  ShardRunReport report;
  ExpOptions ropts = opts;
  ropts.report = &report;
  const auto r = run_montecarlo_parallel(cfg, ropts);
  EXPECT_EQ(encode_mc_result(r), reference);
  ASSERT_FALSE(report.errors.empty());
  EXPECT_EQ(report.errors.front().kind, ShardErrorKind::kCheckpointCorrupt);
  EXPECT_FALSE(report.degraded());  // recomputed, nothing lost
  std::filesystem::remove_all(root);
}

// ---- degraded artifact shape -------------------------------------------

TEST(DegradedArtifact, RootCarriesFlagAndStructuredErrors) {
  ShardRunReport report;
  report.shards_total = 4;
  report.shards_quarantined = 1;
  report.trials_quarantined = 8;
  report.errors.push_back(
      {2, ShardErrorKind::kTrialException, 3, "deterministic failure"});
  const JsonObject root = ResultSink::make_root(
      "exp", JsonObject{}, JsonObject{}, RunStats{}, nullptr, &report);
  const std::string text = root.str();
  EXPECT_NE(text.find("\"degraded\":true"), std::string::npos);
  EXPECT_NE(text.find("\"shard_errors\":["), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"trial_exception\""), std::string::npos);
  EXPECT_NE(text.find("\"shard\":2"), std::string::npos);
}

TEST(DegradedArtifact, CleanReportLeavesArtifactUntouched) {
  ShardRunReport clean;
  clean.shards_total = 4;
  clean.shards_resumed = 2;  // resume alone is not degradation
  const std::string with_report =
      ResultSink::make_root("exp", JsonObject{}, JsonObject{}, RunStats{},
                            nullptr, &clean)
          .str();
  const std::string without_report =
      ResultSink::make_root("exp", JsonObject{}, JsonObject{}, RunStats{})
          .str();
  EXPECT_EQ(with_report, without_report);
}

}  // namespace
}  // namespace sudoku::exp
