// Fleet shard queue (src/exp/work_queue.h): the claim/steal/adopt protocol
// that lets N processes split one campaign over a shared checkpoint store.
// Covers the primitives (exclusive claim, lease-based takeover), the
// contention invariants (exactly one winner among racing claimers), and
// the end-to-end property the whole design exists for: two workers running
// the same campaign concurrently against one store merge results that are
// bit-identical to a single-process run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "exp/atomic_file.h"
#include "exp/checkpoint.h"
#include "exp/mc_experiments.h"
#include "exp/work_queue.h"
#include "reliability/montecarlo.h"

namespace sudoku::exp {
namespace {

using reliability::McConfig;
using reliability::McResult;

std::filesystem::path fresh_dir(const std::string& tag) {
  const auto dir =
      std::filesystem::temp_directory_path() / ("sudoku_fleet_test_" + tag);
  std::filesystem::remove_all(dir);
  return dir;
}

CheckpointKey test_key() {
  CheckpointKey key;
  key.experiment = "fleet_test";
  key.config_hash = 0xabcdef0123456789ull;
  key.base_seed = 7;
  return key;
}

// ---- claim primitives --------------------------------------------------

TEST(ShardWorkQueue, ClaimIsExclusiveUntilReleased) {
  const auto dir = fresh_dir("claim");
  const CheckpointStore store(dir);
  const ShardWorkQueue queue(&store, test_key());

  EXPECT_TRUE(queue.try_claim(3));
  EXPECT_FALSE(queue.try_claim(3));  // already held (even by ourselves)
  EXPECT_TRUE(queue.try_claim(4));   // other shards are independent

  queue.release(3);
  EXPECT_TRUE(queue.try_claim(3));
  queue.release(3);
  queue.release(3);  // double release is harmless
  std::filesystem::remove_all(dir);
}

TEST(ShardWorkQueue, LoadDoneIgnoresResumeFlag) {
  const auto dir = fresh_dir("load_done");
  // resume=false: CheckpointStore::load must return nothing, but the
  // queue's load_done must still see the file — sibling results belong to
  // the *current* run, not a previous one.
  const CheckpointStore store(dir, /*resume=*/false);
  const auto key = test_key();
  const ShardWorkQueue queue(&store, key);

  EXPECT_FALSE(queue.load_done(0).has_value());
  store.save(key, 0, "payload-bytes");
  EXPECT_FALSE(store.load(key, 0).has_value());
  ASSERT_TRUE(queue.load_done(0).has_value());
  EXPECT_EQ(*queue.load_done(0), "payload-bytes");
  std::filesystem::remove_all(dir);
}

TEST(ShardWorkQueue, ExactlyOneWinnerAmongRacingClaimers) {
  const auto dir = fresh_dir("race");
  const CheckpointStore store(dir);
  const auto key = test_key();

  constexpr int kThreads = 8;
  constexpr std::uint64_t kShards = 16;
  std::atomic<int> wins[kShards] = {};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      const ShardWorkQueue queue(&store, test_key());
      for (std::uint64_t s = 0; s < kShards; ++s) {
        if (queue.try_claim(s)) wins[s].fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (std::uint64_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(wins[s].load(), 1) << "shard " << s;
  }
  std::filesystem::remove_all(dir);
}

// ---- lease takeover ----------------------------------------------------

TEST(ShardWorkQueue, StealRequiresExpiredLease) {
  const auto dir = fresh_dir("steal_fresh");
  const CheckpointStore store(dir);
  WorkQueueOptions opt;
  opt.lease = std::chrono::milliseconds(50);
  const ShardWorkQueue queue(&store, test_key(), opt);

  ASSERT_TRUE(queue.try_claim(0));
  EXPECT_FALSE(queue.steal_stale(0));  // fresh claim: lease not expired

  // Backdate the claim file past the lease: now stealable, and the stealer
  // ends up owning the shard (claim file present again).
  std::filesystem::last_write_time(
      queue.claim_path(0),
      std::filesystem::file_time_type::clock::now() - std::chrono::hours(1));
  EXPECT_TRUE(queue.steal_stale(0));
  EXPECT_TRUE(std::filesystem::exists(queue.claim_path(0)));
  EXPECT_FALSE(queue.try_claim(0));  // held by the stealer
  std::filesystem::remove_all(dir);
}

TEST(ShardWorkQueue, StealRefusesFinishedShards) {
  const auto dir = fresh_dir("steal_done");
  const CheckpointStore store(dir);
  const auto key = test_key();
  WorkQueueOptions opt;
  opt.lease = std::chrono::milliseconds(1);
  const ShardWorkQueue queue(&store, key, opt);

  ASSERT_TRUE(queue.try_claim(0));
  std::filesystem::last_write_time(
      queue.claim_path(0),
      std::filesystem::file_time_type::clock::now() - std::chrono::hours(1));
  store.save(key, 0, "done");
  // The done-file dominates: an expired claim over a finished shard is a
  // worker that died after publishing — nothing left to take over.
  EXPECT_FALSE(queue.steal_stale(0));
  EXPECT_FALSE(queue.steal_stale(42));  // no claim at all
  std::filesystem::remove_all(dir);
}

// ---- atomic_create_file (the claim atom) -------------------------------

TEST(AtomicCreateFile, ExactlyOneCreatorWins) {
  const auto dir = fresh_dir("create");
  std::filesystem::create_directories(dir);
  const auto path = dir / "claim";

  constexpr int kThreads = 8;
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      if (atomic_create_file(path, "worker-" + std::to_string(t))) {
        winners.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(winners.load(), 1);
  EXPECT_TRUE(std::filesystem::exists(path));

  EXPECT_FALSE(atomic_create_file(path, "late"));
  std::filesystem::remove(path);
  EXPECT_TRUE(atomic_create_file(path, "fresh"));
  std::filesystem::remove_all(dir);
}

// ---- end-to-end: fleet run equals single-process run -------------------

McConfig small_campaign() {
  McConfig cfg;
  cfg.cache.num_lines = 64;
  cfg.cache.group_size = 64;
  cfg.cache.ber = 2e-4;
  cfg.level = SudokuLevel::kX;  // X fits a single-group cache
  cfg.max_intervals = 600;
  cfg.seed = 20240817;
  return cfg;
}

TEST(FleetRun, TwoContendingWorkersMergeBitIdentically) {
  const auto dir = fresh_dir("e2e");
  const McConfig cfg = small_campaign();

  // Reference: plain single-process run, no store.
  ExpOptions ref_opts;
  ref_opts.threads = 2;
  ref_opts.chunk = 50;  // enough shards that both workers get some
  const McResult reference = run_montecarlo_parallel(cfg, ref_opts);

  // Two "workers" (threads standing in for processes — the claim protocol
  // is pure filesystem, so in-process contention exercises the same atoms)
  // share one store. Each runs the full campaign; claims split the shards
  // and each adopts the sibling's published results.
  CheckpointStore store(dir);
  ShardRunReport reports[2];
  McResult results[2];
  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w) {
    workers.emplace_back([&, w] {
      ExpOptions opts;
      opts.threads = 1;
      opts.chunk = 50;
      opts.checkpoint = &store;
      opts.checkpoint_scope = "fleet_e2e";
      opts.report = &reports[w];
      opts.fleet = true;
      opts.poll_ms = 2;
      results[w] = run_montecarlo_parallel(cfg, opts);
    });
  }
  for (auto& t : workers) t.join();

  // Every worker merges the complete plan, bit-identical to the reference.
  const std::string ref_bytes = encode_mc_result(reference);
  EXPECT_EQ(encode_mc_result(results[0]), ref_bytes);
  EXPECT_EQ(encode_mc_result(results[1]), ref_bytes);

  // The shards were actually split: with contention, at least one worker
  // adopted a sibling's result (both saw the same 12-shard plan).
  const std::uint64_t foreign =
      reports[0].shards_foreign + reports[1].shards_foreign;
  EXPECT_GT(foreign, 0u);
  EXPECT_EQ(reports[0].shards_total, reports[1].shards_total);
  std::filesystem::remove_all(dir);
}

TEST(FleetRun, SecondWorkerAfterTheFactAdoptsEverything) {
  const auto dir = fresh_dir("adopt");
  const McConfig cfg = small_campaign();

  CheckpointStore store(dir);
  ExpOptions opts;
  opts.threads = 1;
  opts.chunk = 100;
  opts.checkpoint = &store;
  opts.checkpoint_scope = "fleet_adopt";
  opts.fleet = true;
  const McResult first = run_montecarlo_parallel(cfg, opts);

  // A worker joining after completion recomputes nothing: every shard is
  // adopted from the store (cold-start semantics notwithstanding — the
  // store was opened with resume=false).
  ShardRunReport report;
  opts.report = &report;
  const McResult second = run_montecarlo_parallel(cfg, opts);
  EXPECT_EQ(encode_mc_result(second), encode_mc_result(first));
  EXPECT_EQ(report.shards_foreign, report.shards_total);
  std::filesystem::remove_all(dir);
}

TEST(FleetRun, RequiresCheckpointStore) {
  ExpOptions opts;
  opts.fleet = true;  // no checkpoint store
  EXPECT_THROW(run_montecarlo_parallel(small_campaign(), opts),
               std::runtime_error);
}

}  // namespace
}  // namespace sudoku::exp
