#include "sudoku/storage.h"

#include <gtest/gtest.h>

namespace sudoku {
namespace {

TEST(Storage, SudokuZMatchesPaperSection7H) {
  // §VII-H: 10 ECC + 31 CRC + ~2 bits amortised PLT = 43 bits per line;
  // two PLTs in ~256 KB SRAM for the 64 MB cache.
  const auto s = sudoku_storage(1ull << 20, 512, 2);
  EXPECT_DOUBLE_EQ(s.crc_bits, 31.0);
  EXPECT_DOUBLE_EQ(s.ecc_bits, 10.0);
  EXPECT_NEAR(s.parity_bits_amortized, 2.16, 0.01);  // paper rounds to 2
  EXPECT_NEAR(s.overhead_bits_per_line(), 43.2, 0.1);
  EXPECT_NEAR(s.sram_bytes_total / 1024.0, 276.5, 1.0);  // ~2x 138 KB
}

TEST(Storage, SudokuBeatsEcc6ByThirtyPercent) {
  const auto z = sudoku_storage(1ull << 20, 512, 2);
  const auto e6 = ecc_k_storage(6);
  EXPECT_DOUBLE_EQ(e6.overhead_bits_per_line(), 60.0);
  const double saving = 1.0 - z.overhead_bits_per_line() / e6.overhead_bits_per_line();
  EXPECT_GT(saving, 0.25);  // paper: ~30% less storage
  EXPECT_LT(saving, 0.33);
}

TEST(Storage, HiEccIsCheapestButWeakest) {
  const auto hi = hi_ecc_storage();
  EXPECT_NEAR(hi.overhead_bits_per_line(), 5.25, 0.01);  // 0.9% overhead claim
  EXPECT_NEAR(hi.overhead_fraction(), 0.0103, 0.001);
}

TEST(Storage, CppcGlobalParityAmortizesToNothing) {
  const auto s = cppc_storage(1ull << 20);
  EXPECT_LT(s.parity_bits_amortized, 0.001);
  EXPECT_NEAR(s.overhead_bits_per_line(), 41.0, 0.01);
}

TEST(Storage, Raid6CostsTwoParityLinesPerGroup) {
  const auto s = raid6_storage(512);
  EXPECT_NEAR(s.parity_bits_amortized, 2.16, 0.01);
  EXPECT_NEAR(s.overhead_bits_per_line(), 43.16, 0.01);  // same budget as Z
}

TEST(Storage, SmallerGroupsCostMoreParity) {
  const auto g128 = sudoku_storage(1ull << 20, 128, 2);
  const auto g512 = sudoku_storage(1ull << 20, 512, 2);
  EXPECT_NEAR(g128.parity_bits_amortized / g512.parity_bits_amortized, 4.0, 1e-9);
}

TEST(Storage, InnerEccStrengthAddsTenBitsPerStep) {
  const auto t1 = sudoku_storage(1ull << 20, 512, 2, 1);
  const auto t2 = sudoku_storage(1ull << 20, 512, 2, 2);
  EXPECT_NEAR(t2.ecc_bits - t1.ecc_bits, 10.0, 1e-9);
  // ECC-2 SuDoku still cheaper than ECC-6 per line.
  EXPECT_LT(t2.overhead_bits_per_line(), 60.0);
}

}  // namespace
}  // namespace sudoku
