#include "codes/gf2poly.h"

#include <gtest/gtest.h>

namespace sudoku::gf2 {
namespace {

TEST(Gf2Poly, Degree) {
  EXPECT_EQ(degree(0), -1);
  EXPECT_EQ(degree(1), 0);
  EXPECT_EQ(degree(0b1011), 3);
  EXPECT_EQ(degree(std::uint64_t{1} << 63), 63);
}

TEST(Gf2Poly, CarrylessMultiply) {
  // (x+1)(x+1) = x^2 + 1 over GF(2).
  EXPECT_EQ(mul(0b11, 0b11), 0b101u);
  // (x^2+x+1)(x+1) = x^3 + 1.
  EXPECT_EQ(mul(0b111, 0b11), 0b1001u);
  EXPECT_EQ(mul(5, 0), 0u);
  EXPECT_EQ(mul(5, 1), 5u);
}

TEST(Gf2Poly, Mod) {
  // x^3 + 1 mod (x^2 + x + 1): x^3+1 = (x+1)(x^2+x+1) + 0.
  EXPECT_EQ(mod(0b1001, 0b111), 0u);
  // x^2 mod (x^2 + x + 1) = x + 1.
  EXPECT_EQ(mod(0b100, 0b111), 0b11u);
  EXPECT_EQ(mod(0b10, 0b111), 0b10u);  // already reduced
}

TEST(Gf2Poly, MulModAgreesWithMulThenMod) {
  const std::uint64_t m = 0b100101;  // x^5 + x^2 + 1
  for (std::uint64_t a = 0; a < 32; ++a) {
    for (std::uint64_t b = 0; b < 32; ++b) {
      EXPECT_EQ(mulmod(a, b, m), mod(mul(a, b), m));
    }
  }
}

TEST(Gf2Poly, PowXMod) {
  const std::uint64_t m = 0b1011;  // x^3 + x + 1 (primitive)
  // Order of x is 7: x^7 = 1, x^k != 1 for k < 7.
  EXPECT_EQ(pow_x_mod(7, m), 1u);
  for (std::uint64_t e = 1; e < 7; ++e) EXPECT_NE(pow_x_mod(e, m), 1u) << e;
}

TEST(Gf2Poly, KnownIrreducibles) {
  EXPECT_TRUE(is_irreducible(0b111, 2));    // x^2+x+1
  EXPECT_TRUE(is_irreducible(0b1011, 3));   // x^3+x+1
  EXPECT_TRUE(is_irreducible(0b1101, 3));   // x^3+x^2+1
  EXPECT_FALSE(is_irreducible(0b1001, 3));  // x^3+1 = (x+1)(x^2+x+1)
  EXPECT_FALSE(is_irreducible(0b101, 2));   // x^2+1 = (x+1)^2
}

TEST(Gf2Poly, KnownPrimitives) {
  EXPECT_TRUE(is_primitive(0b111, 2));
  EXPECT_TRUE(is_primitive(0b1011, 3));
  EXPECT_TRUE(is_primitive(0b10011, 4));       // x^4+x+1
  EXPECT_FALSE(is_primitive(0b11111, 4));      // x^4+x^3+x^2+x+1: order 5
  EXPECT_TRUE(is_primitive(0b10000001001, 10));  // x^10+x^3+1 (BCH field)
}

TEST(Gf2Poly, FindPrimitiveReturnsPrimitive) {
  for (const int d : {2, 3, 4, 5, 8, 10}) {
    const auto p = find_primitive(d);
    ASSERT_NE(p, 0u) << d;
    EXPECT_EQ(degree(p), d);
    EXPECT_TRUE(is_primitive(p, d)) << d;
  }
}

TEST(Gf2Poly, Degree30PrimitiveForCrc) {
  // The CRC-31 construction depends on this search succeeding and being
  // genuinely primitive (full period 2^30 - 1).
  const auto p30 = find_primitive(30);
  ASSERT_NE(p30, 0u);
  EXPECT_EQ(degree(p30), 30);
  EXPECT_TRUE(is_primitive(p30, 30));
  // g = (x+1)·p30 must have degree 31 and an even number of terms
  // (every multiple of (x+1) has even weight).
  const auto g = mul(p30, 0b11);
  EXPECT_EQ(degree(g), 31);
  EXPECT_EQ(__builtin_popcountll(g) % 2, 0);
}

}  // namespace
}  // namespace sudoku::gf2
