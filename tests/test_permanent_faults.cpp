// §VI: "While SuDoku tolerates high rates of transient faults, it is also
// effective for tolerating permanent faults." Permanent (stuck-at) cells
// re-assert their value after every write, so a repair never sticks — the
// controller must instead correct the data on every read, transparently.
#include <gtest/gtest.h>

#include <vector>

#include "faults/scenario.h"
#include "sudoku/controller.h"

namespace sudoku {
namespace {

using faults::StuckCell;

// Re-impose every stuck cell on the stored array (what the physical cells
// do continuously).
void reassert(SudokuController& c, const std::vector<StuckCell>& cells) {
  faults::assert_cells(c.array(), cells);
}

SudokuConfig small_config(SudokuLevel level) {
  SudokuConfig cfg;
  cfg.geo.num_lines = 1024;
  cfg.geo.group_size = 32;
  cfg.level = level;
  return cfg;
}

BitVec random_data(Rng& rng) {
  BitVec d(LineCodec::kDataBits);
  auto w = d.words();
  for (auto& word : w) word = rng.next_u64();
  return d;
}

TEST(PermanentFaults, SingleStuckCellCorrectedOnEveryRead) {
  SudokuController c(small_config(SudokuLevel::kX));
  Rng rng(1);
  c.format_random(rng);
  const BitVec want = c.read_data(7).data;

  std::vector<StuckCell> stuck = {{7, 100, !c.array().test(7, 100)}};
  for (int round = 0; round < 10; ++round) {
    reassert(c, stuck);
    const auto r = c.read_data(7);
    ASSERT_EQ(r.data, want) << "round " << round;
    // The controller scrubs-on-read, but the cell re-asserts: the fault is
    // back every round and is corrected every round.
    ASSERT_NE(r.outcome, SudokuController::ReadOutcome::kDue);
  }
}

TEST(PermanentFaults, MultiBitStuckLineRepairedViaRaid4EveryRead) {
  SudokuController c(small_config(SudokuLevel::kX));
  Rng rng(2);
  c.format_random(rng);
  const BitVec want = c.read_data(40).data;
  std::vector<StuckCell> stuck;
  for (const std::uint32_t b : {3u, 77u, 205u, 431u}) {
    stuck.push_back({40, b, !c.array().test(40, b)});
  }
  for (int round = 0; round < 5; ++round) {
    reassert(c, stuck);
    const auto r = c.read_data(40);
    ASSERT_EQ(r.data, want) << "round " << round;
  }
}

TEST(PermanentFaults, WritesToStuckLineStillReadBackCorrectly) {
  // New data written over stuck cells differs in those positions the
  // moment it lands; the read path must reconstruct it.
  SudokuController c(small_config(SudokuLevel::kY));
  Rng rng(3);
  c.format_random(rng);
  std::vector<StuckCell> stuck = {{9, 50, true}, {9, 300, false}};
  for (int round = 0; round < 5; ++round) {
    const BitVec data = random_data(rng);
    c.write_data(9, data);
    reassert(c, stuck);
    const auto r = c.read_data(9);
    ASSERT_EQ(r.data, data) << "round " << round;
  }
}

TEST(PermanentFaults, StuckPairInOneGroupNeedsSdrEveryTime) {
  SudokuController c(small_config(SudokuLevel::kY));
  Rng rng(4);
  c.format_random(rng);
  const BitVec want4 = c.read_data(4).data;
  const BitVec want20 = c.read_data(20).data;
  std::vector<StuckCell> stuck;
  for (const auto& [line, bit] :
       std::vector<std::pair<std::uint64_t, std::uint32_t>>{{4, 10}, {4, 99}, {20, 55}, {20, 400}}) {
    stuck.push_back({line, bit, !c.array().test(line, bit)});
  }
  for (int round = 0; round < 3; ++round) {
    reassert(c, stuck);
    const std::uint64_t lines[] = {4, 20};
    const auto stats = c.scrub_lines(lines);
    ASSERT_EQ(stats.due_lines, 0u) << "round " << round;
    reassert(c, stuck);  // cells snap back after the repair writes
    ASSERT_EQ(c.read_data(4).data, want4);
    reassert(c, stuck);
    ASSERT_EQ(c.read_data(20).data, want20);
  }
}

TEST(PermanentFaults, MixedPermanentAndTransientFaults) {
  SudokuController c(small_config(SudokuLevel::kZ));
  Rng rng(5);
  c.format_random(rng);
  const BitVec want = c.read_data(100).data;
  std::vector<StuckCell> stuck = {{100, 222, !c.array().test(100, 222)}};
  for (int round = 0; round < 10; ++round) {
    reassert(c, stuck);
    // A transient fault lands on the same line.
    const auto tbit = static_cast<std::uint32_t>(rng.next_below(553));
    if (tbit != 222) c.array().flip(100, tbit);
    const auto r = c.read_data(100);
    ASSERT_EQ(r.data, want) << "round " << round;
  }
}

}  // namespace
}  // namespace sudoku
