#include <gtest/gtest.h>

#include "energy/energy_model.h"
#include "sim/timing_sim.h"
#include "sim/workload.h"

namespace sudoku::sim {
namespace {

SimConfig fast_config() {
  SimConfig cfg;
  cfg.num_cores = 2;
  cfg.instructions_per_core = 200'000;
  cfg.llc.size_bytes = 4ull << 20;  // shrink the LLC to keep tests quick
  return cfg;
}

TEST(Workload, RosterCoversAllSuites) {
  const auto& roster = benchmark_roster();
  EXPECT_GE(roster.size(), 35u);
  int spec = 0, parsec = 0, bio = 0, comm = 0;
  for (const auto& b : roster) {
    if (b.suite == "SPEC") ++spec;
    if (b.suite == "PARSEC") ++parsec;
    if (b.suite == "BIO") ++bio;
    if (b.suite == "COMM") ++comm;
  }
  EXPECT_GE(spec, 15);
  EXPECT_GE(parsec, 8);
  EXPECT_GE(bio, 3);
  EXPECT_GE(comm, 4);
}

TEST(Workload, FindBenchmarkReturnsMatch) {
  const auto& mcf = find_benchmark("mcf");
  EXPECT_EQ(mcf.name, "mcf");
  EXPECT_GT(mcf.llc_apki, 10.0);  // memory-bound
}

TEST(Workload, GeneratorIsDeterministic) {
  TraceGenerator a(find_benchmark("gcc"), 0, 7);
  TraceGenerator b(find_benchmark("gcc"), 0, 7);
  for (int i = 0; i < 1000; ++i) {
    const auto x = a.next();
    const auto y = b.next();
    EXPECT_EQ(x.addr, y.addr);
    EXPECT_EQ(x.is_write, y.is_write);
    EXPECT_EQ(x.gap_instructions, y.gap_instructions);
  }
}

TEST(Workload, CoresUseDisjointAddressSpaces) {
  TraceGenerator a(find_benchmark("gcc"), 0, 7);
  TraceGenerator b(find_benchmark("gcc"), 1, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(a.next().addr >> 40, b.next().addr >> 40);
  }
}

TEST(Workload, WriteFractionMatchesProfile) {
  const auto& prof = find_benchmark("lbm");
  TraceGenerator gen(prof, 0, 3);
  int writes = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (gen.next().is_write) ++writes;
  EXPECT_NEAR(static_cast<double>(writes) / n, prof.write_frac, 0.02);
}

TEST(Workload, GapMatchesApki) {
  const auto& prof = find_benchmark("mcf");
  TraceGenerator gen(prof, 0, 4);
  double total_gap = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total_gap += gen.next().gap_instructions;
  const double apki = 1000.0 * n / (total_gap + n);
  EXPECT_NEAR(apki, prof.llc_apki, prof.llc_apki * 0.1);
}

TEST(Workload, StreamingFootprintRespected) {
  const auto& prof = find_benchmark("libquantum");
  TraceGenerator gen(prof, 0, 5);
  for (int i = 0; i < 10000; ++i) {
    const auto a = gen.next();
    EXPECT_LT((a.addr & ((1ull << 40) - 1)) / 64, prof.footprint_lines);
  }
}

TEST(TimingSim, RunsAndProducesSaneIpc) {
  TimingSimulator sim(fast_config());
  const auto res = sim.run({"gcc", "mcf"});
  ASSERT_EQ(res.cores.size(), 2u);
  for (const auto& c : res.cores) {
    EXPECT_GT(c.ipc, 0.05);
    EXPECT_LT(c.ipc, 4.0 + 1e-9);  // cannot beat the retire width
    EXPECT_GE(c.instructions, 200'000u);
  }
  EXPECT_GT(res.total_time_ns, 0.0);
  EXPECT_GT(res.llc.accesses, 0u);
}

TEST(TimingSim, MemoryBoundBenchmarkIsSlower) {
  TimingSimulator sim(fast_config());
  const auto light = sim.run({"swaptions", "swaptions"});
  const auto heavy = sim.run({"mcf", "mcf"});
  EXPECT_GT(light.cores[0].ipc, heavy.cores[0].ipc * 1.5);
}

TEST(TimingSim, SudokuOverheadIsSmall) {
  // The core Figure 8 claim: SuDoku-Z costs well under 1% vs ideal.
  SimConfig with = fast_config();
  SimConfig ideal = fast_config();
  ideal.sudoku.enabled = false;
  const auto r_with = TimingSimulator(with).run({"gcc", "lbm"});
  const auto r_ideal = TimingSimulator(ideal).run({"gcc", "lbm"});
  const double slowdown = r_with.total_time_ns / r_ideal.total_time_ns;
  // Tiny speedups are possible: delaying one load by the CRC cycle can
  // reshuffle DRAM bank conflicts. The claim is |overhead| << 2%.
  EXPECT_GE(slowdown, 0.99);
  EXPECT_LT(slowdown, 1.02);
}

TEST(TimingSim, PltWritesTrackCacheWrites) {
  SimConfig cfg = fast_config();
  const auto res = TimingSimulator(cfg).run({"lbm", "lbm"});
  // Two PLTs: parity updates are two per cache write (stores + fills).
  EXPECT_EQ(res.plt_writes, 2 * res.llc_writes);
}

TEST(TimingSim, PltPortsNeverBottleneck) {
  // §VII-I: the SRAM PLT (1 ns writes) must stay far below the STTRAM
  // banks' utilization even on a write-heavy workload.
  SimConfig cfg = fast_config();
  const auto res = TimingSimulator(cfg).run({"lbm", "comm1"});
  EXPECT_GT(res.llc_busy_ns, 0.0);
  EXPECT_GT(res.plt_busy_ns, 0.0);
  EXPECT_LT(res.plt_bank_utilization(cfg.llc.banks),
            res.llc_bank_utilization(cfg.llc.banks) / 2.0);
  EXPECT_LT(res.plt_bank_utilization(cfg.llc.banks), 0.05);
}

TEST(TimingSim, IdealHasNoSudokuTraffic) {
  SimConfig cfg = fast_config();
  cfg.sudoku.enabled = false;
  const auto res = TimingSimulator(cfg).run({"gcc"});
  EXPECT_EQ(res.plt_writes, 0u);
  EXPECT_EQ(res.scrub_reads, 0u);
  EXPECT_EQ(res.codec_events, 0u);
}

TEST(TimingSim, DeterministicForSeed) {
  SimConfig cfg = fast_config();
  const auto a = TimingSimulator(cfg).run({"omnetpp"});
  const auto b = TimingSimulator(cfg).run({"omnetpp"});
  EXPECT_EQ(a.total_time_ns, b.total_time_ns);
  EXPECT_EQ(a.dram_accesses, b.dram_accesses);
}

TEST(Energy, BreakdownAddsUp) {
  SimConfig cfg = fast_config();
  const auto res = TimingSimulator(cfg).run({"gcc", "lbm"});
  energy::EnergyParams params;
  const auto e = energy::compute_energy(res, params, 553ull * (1 << 16), 2 * 553 * 128);
  EXPECT_GT(e.total_j(), 0.0);
  const double sum = e.llc_dynamic_j + e.plt_dynamic_j + e.codec_j + e.scrub_j +
                     e.dram_j + e.static_j + e.core_j;
  EXPECT_DOUBLE_EQ(e.total_j(), sum);
}

TEST(Energy, SudokuEdpOverheadMatchesFigure9) {
  // Figure 9: System-EDP increase of at most ~0.4% on average.
  SimConfig with = fast_config();
  SimConfig ideal = fast_config();
  ideal.sudoku.enabled = false;
  const auto r_with = TimingSimulator(with).run({"lbm", "comm1"});
  const auto r_ideal = TimingSimulator(ideal).run({"lbm", "comm1"});
  energy::EnergyParams params;
  const std::uint64_t cells = with.llc.num_lines() * 553;
  const auto e_with = energy::compute_energy(r_with, params, cells, 2 * 2048 * 553);
  const auto e_ideal = energy::compute_energy(r_ideal, params, cells, 0);
  const double edp_ratio = energy::edp(e_with, r_with.total_time_ns) /
                           energy::edp(e_ideal, r_ideal.total_time_ns);
  // At these tiny instruction counts timing noise (contention reshuffling)
  // can swing either way by ~1%; the claim is |overhead| is a few percent
  // at most, with the energy *components* strictly larger for SuDoku.
  EXPECT_GT(edp_ratio, 0.95);
  EXPECT_LT(edp_ratio, 1.05);
  EXPECT_GT(e_with.plt_dynamic_j, 0.0);
  EXPECT_GT(e_with.scrub_j, 0.0);
  EXPECT_EQ(e_ideal.plt_dynamic_j, 0.0);
  EXPECT_GT(e_with.llc_dynamic_j + e_with.plt_dynamic_j + e_with.codec_j + e_with.scrub_j,
            e_ideal.llc_dynamic_j + e_ideal.plt_dynamic_j + e_ideal.codec_j);
}

TEST(Energy, StaticPowerFavorsSttramOverSram) {
  // Table VII: STTRAM leakage per cell is ~57x lower than SRAM — the
  // motivation for STTRAM LLCs in the first place.
  energy::EnergyParams p;
  EXPECT_GT(p.sram_static_nw_per_cell / p.sttram_static_nw_per_cell, 50.0);
}

}  // namespace
}  // namespace sudoku::sim
