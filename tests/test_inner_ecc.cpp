// Tests for the §VII-G enhancement: SuDoku with an ECC-t inner code
// (t >= 2) instead of ECC-1. With ECC-2, a line tolerates 2 faults
// locally, SDR resurrects 3-fault lines, and the whole reliability ladder
// shifts up.
#include <gtest/gtest.h>

#include <set>

#include "reliability/analytical.h"
#include "sudoku/controller.h"

namespace sudoku {
namespace {

SudokuConfig config_with_t(int t, SudokuLevel level) {
  SudokuConfig cfg;
  cfg.geo.num_lines = 1024;
  cfg.geo.group_size = 32;
  cfg.level = level;
  cfg.inner_ecc_t = t;
  return cfg;
}

BitVec random_data(Rng& rng) {
  BitVec d(LineCodec::kDataBits);
  auto w = d.words();
  for (auto& word : w) word = rng.next_u64();
  return d;
}

void inject(SudokuController& c, std::uint64_t line, int count, Rng& rng) {
  std::set<std::uint32_t> used;
  while (static_cast<int>(used.size()) < count) {
    const auto bit = static_cast<std::uint32_t>(rng.next_below(c.codec().total_bits()));
    if (used.insert(bit).second) c.array().flip(line, bit);
  }
}

TEST(InnerEcc, CodecWidthScalesWithT) {
  for (int t = 1; t <= 4; ++t) {
    LineCodec codec(t);
    EXPECT_EQ(codec.ecc_bits(), 10u * t) << t;
    EXPECT_EQ(codec.total_bits(), 543u + 10u * t) << t;
  }
}

TEST(InnerEcc, Ecc2CodecCorrectsTwoFaults) {
  Rng rng(1);
  LineCodec codec(2);
  const BitVec good = codec.encode(random_data(rng));
  for (int trial = 0; trial < 200; ++trial) {
    BitVec bad = good;
    const auto i = rng.next_below(codec.total_bits());
    auto j = i;
    while (j == i) j = rng.next_below(codec.total_bits());
    bad.flip(i);
    bad.flip(j);
    ASSERT_EQ(codec.check_and_correct(bad), LineCodec::LineState::kCorrected);
    ASSERT_EQ(bad, good);
  }
}

TEST(InnerEcc, Ecc2CodecFlagsThreeFaults) {
  Rng rng(2);
  LineCodec codec(2);
  const BitVec good = codec.encode(random_data(rng));
  for (int trial = 0; trial < 200; ++trial) {
    BitVec bad = good;
    std::set<std::uint64_t> used;
    while (used.size() < 3) {
      const auto p = rng.next_below(codec.total_bits());
      if (used.insert(p).second) bad.flip(p);
    }
    ASSERT_EQ(codec.check_and_correct(bad), LineCodec::LineState::kUncorrectable);
  }
}

TEST(InnerEcc, SdrResurrectsThreeFaultLinesUnderEcc2) {
  // Two 3-fault lines in a group defeat SuDoku-Y with ECC-1 but are
  // resurrectable with ECC-2 (flip one mismatch, ECC-2 fixes the rest).
  SudokuController c(config_with_t(2, SudokuLevel::kY));
  Rng rng(3);
  c.format_random(rng);
  const BitVec want6 = c.read_data(6).data;
  const BitVec want12 = c.read_data(12).data;
  inject(c, 6, 3, rng);
  inject(c, 12, 3, rng);
  const std::uint64_t lines[] = {6, 12};
  const auto stats = c.scrub_lines(lines);
  EXPECT_EQ(stats.due_lines, 0u);
  EXPECT_GE(stats.sdr_repairs, 1u);
  EXPECT_EQ(c.read_data(6).data, want6);
  EXPECT_EQ(c.read_data(12).data, want12);
}

TEST(InnerEcc, Ecc1FailsWhereEcc2Succeeds) {
  // The same 3+3 pattern under ECC-1 is a DUE — the §VII-G claim.
  SudokuController c1(config_with_t(1, SudokuLevel::kY));
  Rng rng(4);
  c1.format_random(rng);
  inject(c1, 6, 3, rng);
  inject(c1, 12, 3, rng);
  const std::uint64_t lines[] = {6, 12};
  EXPECT_EQ(c1.scrub_lines(lines).due_lines, 2u);
}

TEST(InnerEcc, Ecc2PairsOfFourFaultLinesFailY) {
  SudokuController c(config_with_t(2, SudokuLevel::kY));
  Rng rng(5);
  c.format_random(rng);
  inject(c, 6, 4, rng);
  inject(c, 12, 4, rng);
  const std::uint64_t lines[] = {6, 12};
  EXPECT_EQ(c.scrub_lines(lines).due_lines, 2u);
}

TEST(InnerEcc, Ecc2ZRepairsFourFaultPairsViaHash2) {
  SudokuController c(config_with_t(2, SudokuLevel::kZ));
  Rng rng(6);
  c.format_random(rng);
  const BitVec want6 = c.read_data(6).data;
  const BitVec want12 = c.read_data(12).data;
  inject(c, 6, 4, rng);
  inject(c, 12, 4, rng);
  const std::uint64_t lines[] = {6, 12};
  const auto stats = c.scrub_lines(lines);
  EXPECT_EQ(stats.due_lines, 0u);
  EXPECT_EQ(c.read_data(6).data, want6);
  EXPECT_EQ(c.read_data(12).data, want12);
}

TEST(InnerEcc, MismatchCapAutoScales) {
  SudokuConfig cfg = config_with_t(2, SudokuLevel::kY);
  EXPECT_EQ(cfg.sdr_mismatch_cap(), 9u);
  cfg.inner_ecc_t = 1;
  EXPECT_EQ(cfg.sdr_mismatch_cap(), 6u);
  cfg.max_sdr_mismatches = 4;
  EXPECT_EQ(cfg.sdr_mismatch_cap(), 4u);
}

TEST(InnerEcc, AnalyticalLadderImprovesWithT) {
  // Each increment of the inner code strength must improve every rung by
  // orders of magnitude at the paper's BER.
  reliability::CacheParams c1, c2;
  c2.inner_ecc_t = 2;
  EXPECT_GT(reliability::sudoku_x_due(c1).fit() / reliability::sudoku_x_due(c2).fit(),
            100.0);
  EXPECT_GT(reliability::sudoku_y_due(c1).fit() / reliability::sudoku_y_due(c2).fit(),
            100.0);
  EXPECT_GT(reliability::sudoku_z_due(c1, reliability::SdrModel::kStrict).fit() /
                reliability::sudoku_z_due(c2, reliability::SdrModel::kStrict).fit(),
            100.0);
}

TEST(InnerEcc, StorageCostGrowsLinearly) {
  reliability::CacheParams c;
  c.inner_ecc_t = 3;
  EXPECT_EQ(c.sudoku_line_bits(), 573u);
}

TEST(InnerEcc, WriteReadRoundTripWithEcc2) {
  SudokuController c(config_with_t(2, SudokuLevel::kZ));
  Rng rng(7);
  c.format_random(rng);
  const BitVec data = random_data(rng);
  c.write_data(100, data);
  EXPECT_EQ(c.read_data(100).data, data);
  EXPECT_TRUE(c.parities_consistent());
}

}  // namespace
}  // namespace sudoku
