#include "raid/geometry.h"

#include <gtest/gtest.h>

#include <set>

namespace sudoku {
namespace {

RaidGeometry small_geo() {
  RaidGeometry g;
  g.num_lines = 16;
  g.group_size = 4;
  return g;
}

TEST(RaidGeometry, Counts) {
  RaidGeometry g;  // defaults: 1M lines, 512/group
  EXPECT_EQ(g.num_groups(), 2048u);
  EXPECT_EQ(g.group_bits(), 9u);
  EXPECT_EQ(g.line_bits(), 20u);
  EXPECT_TRUE(g.valid());
  EXPECT_TRUE(g.supports_skewed_hash());
}

TEST(RaidGeometry, SkewedHashNeedsEnoughBits) {
  RaidGeometry g;
  g.num_lines = 256;
  g.group_size = 512;  // group larger than cache
  EXPECT_FALSE(g.valid());
  g.num_lines = 512;
  g.group_size = 512;
  EXPECT_TRUE(g.valid());
  EXPECT_FALSE(g.supports_skewed_hash());  // needs 2·9 = 18 line bits
}

TEST(SkewedHash, PaperExampleSixteenLines) {
  // Figure 5: 16 lines, groups of 4. Hash-1 groups consecutive lines;
  // Hash-2 groups every fourth line.
  SkewedHash h(small_geo());
  EXPECT_EQ(h.group1(0), 0u);
  EXPECT_EQ(h.group1(3), 0u);
  EXPECT_EQ(h.group1(4), 1u);
  EXPECT_EQ(h.group1(15), 3u);
  // Hash-2: lines {0,4,8,12} share a group, {1,5,9,13} share another...
  EXPECT_EQ(h.group2(0), h.group2(4));
  EXPECT_EQ(h.group2(0), h.group2(8));
  EXPECT_EQ(h.group2(0), h.group2(12));
  EXPECT_NE(h.group2(0), h.group2(1));
}

TEST(SkewedHash, MembersRoundTrip) {
  SkewedHash h(small_geo());
  for (std::uint64_t g = 0; g < 4; ++g) {
    const auto m1 = h.members1(g);
    ASSERT_EQ(m1.size(), 4u);
    for (std::uint32_t s = 0; s < 4; ++s) {
      EXPECT_EQ(h.group1(m1[s]), g);
      EXPECT_EQ(h.slot1(m1[s]), s);
      EXPECT_EQ(h.member1(g, s), m1[s]);
    }
    const auto m2 = h.members2(g);
    for (std::uint32_t s = 0; s < 4; ++s) {
      EXPECT_EQ(h.group2(m2[s]), g);
      EXPECT_EQ(h.slot2(m2[s]), s);
      EXPECT_EQ(h.member2(g, s), m2[s]);
    }
  }
}

TEST(SkewedHash, EveryLineInExactlyOneGroupPerHash) {
  SkewedHash h(small_geo());
  std::set<std::uint64_t> seen1, seen2;
  for (std::uint64_t g = 0; g < 4; ++g) {
    for (const auto l : h.members1(g)) EXPECT_TRUE(seen1.insert(l).second);
    for (const auto l : h.members2(g)) EXPECT_TRUE(seen2.insert(l).second);
  }
  EXPECT_EQ(seen1.size(), 16u);
  EXPECT_EQ(seen2.size(), 16u);
}

TEST(SkewedHash, DisjointnessGuarantee) {
  // Paper §V-A: lines sharing a Hash-1 group never share a Hash-2 group.
  SkewedHash h(small_geo());
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = a + 1; b < 16; ++b) {
      if (h.group1(a) == h.group1(b)) {
        EXPECT_NE(h.group2(a), h.group2(b)) << a << "," << b;
      }
    }
  }
}

TEST(SkewedHash, DisjointnessGuaranteeFullScale) {
  // Spot-check the 1M-line geometry: all pairs within a few Hash-1 groups.
  RaidGeometry g;
  SkewedHash h(g);
  for (const std::uint64_t grp : {0ull, 1ull, 1000ull, 2047ull}) {
    const auto members = h.members1(grp);
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); j += 37) {
        ASSERT_NE(h.group2(members[i]), h.group2(members[j]));
      }
    }
  }
}

TEST(SkewedHash, Hash2GroupsHaveFullSize) {
  RaidGeometry g;
  SkewedHash h(g);
  const auto m = h.members2(12345 % g.num_groups());
  EXPECT_EQ(m.size(), 512u);
  std::set<std::uint64_t> uniq(m.begin(), m.end());
  EXPECT_EQ(uniq.size(), 512u);
  for (const auto l : m) EXPECT_LT(l, g.num_lines);
}

TEST(SkewedHash, GroupIdsInRange) {
  RaidGeometry g;
  SkewedHash h(g);
  for (std::uint64_t line = 0; line < g.num_lines; line += 4097) {
    EXPECT_LT(h.group1(line), g.num_groups());
    EXPECT_LT(h.group2(line), g.num_groups());
  }
}

}  // namespace
}  // namespace sudoku
