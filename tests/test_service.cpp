// Concurrent resilient-memory service (src/service, docs/service.md):
//  * single-client runs are bit-identical to driving the controller
//    directly (the service adds concurrency, never behavior);
//  * a seeded 8-client × 4-bank stress run with background fault injection
//    and async scrubbing loses no writes and tears no lines — every read
//    returns a payload some client committed, intact, and no older than
//    the last write known complete before the read began;
//  * drain() is a fence for the background repair queue;
//  * the load generator's accounting adds up in both arrival modes;
//  * the Hi-ECC backend's line-granular data path corrects/declares faults
//    at its region granularity.
#include <gtest/gtest.h>

#include <atomic>
#include <algorithm>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "faults/scenario.h"
#include "service/load_gen.h"
#include "service/service.h"
#include "sttram/fault_injector.h"

namespace sudoku::service {
namespace {

BitVec payload(std::uint64_t addr, std::uint64_t seq) {
  BitVec data(512);
  data.set_bits(0, 64, seq);
  std::uint64_t state = (addr << 20) ^ seq;
  for (std::uint32_t i = 64; i < 512; i += 64) {
    data.set_bits(i, 64, splitmix64_next(state));
  }
  return data;
}

bool payload_intact(const BitVec& data, std::uint64_t addr, std::uint64_t* seq_out) {
  const std::uint64_t seq = data.get_bits(0, 64);
  std::uint64_t state = (addr << 20) ^ seq;
  for (std::uint32_t i = 64; i < 512; i += 64) {
    if (data.get_bits(i, 64) != splitmix64_next(state)) return false;
  }
  *seq_out = seq;
  return true;
}

SudokuConfig small_z_config(std::uint64_t num_lines = 4096) {
  SudokuConfig cfg;
  cfg.geo.num_lines = num_lines;
  cfg.geo.group_size = 64;
  cfg.level = SudokuLevel::kZ;
  return cfg;
}

// ---- single-client determinism ----------------------------------------

// One client on a one-bank service must be observationally bit-identical
// to the raw controller: same statuses, same data, same DUE counts, same
// final parity verdict, under an identical seeded script of writes, reads
// and inject+scrub rounds.
TEST(ServiceDeterminism, SingleClientBitIdenticalToController) {
  const auto cfg = small_z_config();
  SudokuController ctrl(cfg);
  MemoryService svc({.banks = 1, .repair_workers = 1},
                    [&](std::uint32_t) { return make_sudoku_backend(cfg); });

  const auto pattern = [](std::uint64_t line) { return payload(line, 0); };
  ctrl.format(pattern);
  svc.format([&](std::uint32_t, std::uint64_t line) { return pattern(line); });

  ClientStats stats;
  BitVec svc_data;
  Rng script(7);
  const FaultInjector injector(cfg.geo.num_lines, 553, 1e-4);

  for (int step = 0; step < 300; ++step) {
    const std::uint64_t op = script.next_below(4);
    if (op == 0) {
      // write identical fresh data to both sides
      const std::uint64_t line = script.next_below(cfg.geo.num_lines);
      const BitVec data = payload(line, static_cast<std::uint64_t>(step) + 1);
      ctrl.write_data(line, data);
      svc.write(line, data, stats);
    } else if (op <= 2) {
      const std::uint64_t line = script.next_below(cfg.geo.num_lines);
      const auto expect = ctrl.read_data(line);
      const ReadStatus got = svc.read(line, stats, svc_data);
      ASSERT_EQ(static_cast<int>(got), static_cast<int>(expect.outcome))
          << "step " << step << " line " << line;
      ASSERT_EQ(svc_data, expect.data) << "step " << step << " line " << line;
    } else {
      // identical fault batch into both, then scrub the touched lines in
      // the same (sorted) order
      const FaultBatch batch = injector.sample_interval(script);
      std::vector<std::uint64_t> lines;
      lines.reserve(batch.size());
      for (const auto& [line, bits] : batch) lines.push_back(line);
      std::sort(lines.begin(), lines.end());
      FaultInjector::apply(batch, ctrl.array());
      const std::uint64_t expect_due = ctrl.scrub_lines(lines).due_lines;
      svc.inject_faults(0, batch, /*scrub_async=*/false);
      const std::uint64_t got_due = svc.scrub_units_now(0, lines);
      ASSERT_EQ(got_due, expect_due) << "step " << step;
    }
  }

  // Every line, and the parity invariant, must agree at the end.
  for (std::uint64_t line = 0; line < cfg.geo.num_lines; ++line) {
    const auto expect = ctrl.read_data(line);
    const ReadStatus got = svc.read(line, stats, svc_data);
    ASSERT_EQ(static_cast<int>(got), static_cast<int>(expect.outcome)) << line;
    ASSERT_EQ(svc_data, expect.data) << line;
  }
  EXPECT_EQ(svc.backend(0).consistent(), ctrl.parities_consistent());
}

// ---- multi-client stress ----------------------------------------------

// 8 clients × 4 banks with background injection and async scrubbing. Each
// address has one writing owner, so per-address sequence numbers bracket
// what a concurrent reader may legally observe:
//   committed-before-read  <=  observed seq  <=  issued-after-read.
// An intact payload checksum additionally proves the line was not torn by
// a racing writer or scrubber.
TEST(ServiceStress, NoLostWritesNoTornLinesUnderConcurrentScrub) {
  constexpr std::uint32_t kClients = 8;
  constexpr std::uint32_t kBanks = 4;
  constexpr std::uint64_t kLinesPerBank = 4096;
  constexpr std::uint64_t kOpsPerClient = 3000;

  const auto cfg = small_z_config(kLinesPerBank);
  MemoryService svc({.banks = kBanks, .repair_workers = 2},
                    [&](std::uint32_t) { return make_sudoku_backend(cfg); });
  const std::uint64_t num_addrs = svc.num_lines();
  svc.format([&](std::uint32_t bank, std::uint64_t line) {
    return payload(line * kBanks + bank, 0);  // addr of (bank, line)
  });

  std::vector<std::atomic<std::uint64_t>> issued(num_addrs);
  std::vector<std::atomic<std::uint64_t>> committed(num_addrs);
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> due_reads{0};

  std::atomic<bool> stop_injector{false};
  std::thread injector_thread([&] {
    Rng rng(99);
    const FaultInjector injector(kLinesPerBank, 553, 5e-6);
    while (!stop_injector.load(std::memory_order_relaxed)) {
      for (std::uint32_t bank = 0; bank < kBanks; ++bank) {
        svc.inject_faults(bank, injector.sample_interval(rng),
                          /*scrub_async=*/true);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::vector<ClientStats> stats(kClients);
  std::vector<std::thread> clients;
  for (std::uint32_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(1000 + c);
      BitVec read_buf;
      for (std::uint64_t op = 0; op < kOpsPerClient; ++op) {
        const std::uint64_t addr = rng.next_below(num_addrs);
        const bool owns = addr % kClients == c;
        if (owns && rng.next_bool(0.5)) {
          const std::uint64_t seq = issued[addr].load(std::memory_order_relaxed) + 1;
          issued[addr].store(seq, std::memory_order_release);
          svc.write(addr, payload(addr, seq), stats[c]);
          committed[addr].store(seq, std::memory_order_release);
        } else {
          const std::uint64_t lb = committed[addr].load(std::memory_order_acquire);
          const ReadStatus status = svc.read(addr, stats[c], read_buf);
          const std::uint64_t ub = issued[addr].load(std::memory_order_acquire);
          if (status == ReadStatus::kDue) {
            due_reads.fetch_add(1, std::memory_order_relaxed);
            continue;  // data legitimately lost until the owner rewrites
          }
          std::uint64_t seq = 0;
          if (!payload_intact(read_buf, addr, &seq) || seq < lb || seq > ub) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  stop_injector.store(true, std::memory_order_relaxed);
  injector_thread.join();
  svc.drain();

  EXPECT_EQ(violations.load(), 0u);

  // Quiesced: rewrite any line the injector destroyed (a write over a lost
  // line resynchronises its parity), then the stored state must pass the
  // parity audit and every line must hold its last committed payload.
  ClientStats final_stats;
  BitVec buf;
  for (std::uint64_t addr = 0; addr < num_addrs; ++addr) {
    if (svc.read(addr, final_stats, buf) == ReadStatus::kDue) {
      const std::uint64_t seq = issued[addr].load() + 1;
      issued[addr].store(seq);
      svc.write(addr, payload(addr, seq), final_stats);
      committed[addr].store(seq);
    }
  }
  for (std::uint32_t bank = 0; bank < kBanks; ++bank) {
    svc.scrub_bank_now(bank);
    EXPECT_TRUE(svc.backend(bank).consistent()) << "bank " << bank;
  }
  std::uint64_t mismatches = 0;
  for (std::uint64_t addr = 0; addr < num_addrs; ++addr) {
    const ReadStatus status = svc.read(addr, final_stats, buf);
    ASSERT_NE(static_cast<int>(status), static_cast<int>(ReadStatus::kDue));
    std::uint64_t seq = 0;
    if (!payload_intact(buf, addr, &seq) || seq != committed[addr].load()) {
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u);

  // The lock-free fast path must actually have carried traffic.
  std::uint64_t fast = 0;
  for (const auto& s : stats) {
    fast += s.registry().find_counter("service.read.fast")->value();
  }
  EXPECT_GT(fast, 0u);
}

// ---- graceful degradation under permanent faults ----------------------

// A mixed permanent/intermittent/transient scenario drives two banks while
// clients hammer them, with repeat-offender retirement enabled. The
// service must (a) lose no committed writes, (b) converge — once traffic
// stops and scrubs observe the stuck cells a few times — to a stable
// retired-line set, retiring each line exactly once, and (c) serve every
// line (spare-backed or not) with its last committed payload: degradation
// without silent corruption.
TEST(ServiceDegradation, RetiresRepeatOffendersWithoutLosingData) {
  constexpr std::uint32_t kClients = 6;
  constexpr std::uint32_t kBanks = 2;
  constexpr std::uint64_t kLinesPerBank = 1024;
  constexpr std::uint64_t kOpsPerClient = 1500;
  constexpr std::uint32_t kStrikes = 3;

  SudokuConfig cfg;
  cfg.geo.num_lines = kLinesPerBank;
  cfg.geo.group_size = 32;
  cfg.level = SudokuLevel::kZ;
  MemoryService svc({.banks = kBanks,
                     .repair_workers = 2,
                     .retire_strikes = kStrikes,
                     .spare_lines_per_bank = 64},
                    [&](std::uint32_t) { return make_sudoku_backend(cfg); });
  const std::uint64_t num_addrs = svc.num_lines();
  svc.format([&](std::uint32_t bank, std::uint64_t line) {
    return payload(line * kBanks + bank, 0);
  });

  // One scenario per bank (distinct seeds): stuck-at + intermittent +
  // cluster + iid, the "mixed" preset, against this backend's geometry.
  const faults::Geometry geo{kLinesPerBank, 553};
  std::vector<faults::FaultScenario> scenarios;
  for (std::uint32_t bank = 0; bank < kBanks; ++bank) {
    scenarios.emplace_back(faults::ScenarioSpec::builtin("mixed"), geo,
                           7000 + bank);
  }

  std::vector<std::atomic<std::uint64_t>> issued(num_addrs);
  std::vector<std::atomic<std::uint64_t>> committed(num_addrs);
  std::atomic<std::uint64_t> violations{0};

  std::atomic<bool> stop_injector{false};
  std::thread injector_thread([&] {
    for (std::uint64_t t = 0; !stop_injector.load(std::memory_order_relaxed);
         ++t) {
      for (std::uint32_t bank = 0; bank < kBanks; ++bank) {
        svc.assert_stuck(bank, scenarios[bank].stuck(t).cells(),
                         /*scrub_async=*/true);
        svc.inject_faults(bank, scenarios[bank].transient(t),
                          /*scrub_async=*/true);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::vector<ClientStats> stats(kClients);
  std::vector<std::thread> clients;
  for (std::uint32_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(4000 + c);
      BitVec read_buf;
      for (std::uint64_t op = 0; op < kOpsPerClient; ++op) {
        const std::uint64_t addr = rng.next_below(num_addrs);
        const bool owns = addr % kClients == c;
        if (owns && rng.next_bool(0.5)) {
          const std::uint64_t seq = issued[addr].load(std::memory_order_relaxed) + 1;
          issued[addr].store(seq, std::memory_order_release);
          svc.write(addr, payload(addr, seq), stats[c]);
          committed[addr].store(seq, std::memory_order_release);
        } else {
          const std::uint64_t lb = committed[addr].load(std::memory_order_acquire);
          const ReadStatus status = svc.read(addr, stats[c], read_buf);
          const std::uint64_t ub = issued[addr].load(std::memory_order_acquire);
          if (status == ReadStatus::kDue) continue;  // legitimately lost
          std::uint64_t seq = 0;
          if (!payload_intact(read_buf, addr, &seq) || seq < lb || seq > ub) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  stop_injector.store(true, std::memory_order_relaxed);
  injector_thread.join();
  svc.drain();
  EXPECT_EQ(violations.load(), 0u);

  // Heal anything the fault storm destroyed outright (an owner rewrite is
  // the application-level recovery for a DUE), then converge: re-assert
  // the permanent cells and scrub until the retired set stops moving. The
  // stuck population is constant, so three consecutive dirty sweeps retire
  // every line whose stuck cells disagree with its payload, and nothing
  // else accumulates strikes once transients stop.
  ClientStats final_stats;
  BitVec buf;
  for (std::uint64_t addr = 0; addr < num_addrs; ++addr) {
    if (svc.read(addr, final_stats, buf) == ReadStatus::kDue) {
      const std::uint64_t seq = issued[addr].load() + 1;
      issued[addr].store(seq);
      svc.write(addr, payload(addr, seq), final_stats);
      committed[addr].store(seq);
    }
  }
  const auto converge_round = [&] {
    for (std::uint32_t bank = 0; bank < kBanks; ++bank) {
      svc.assert_stuck(bank, scenarios[bank].stuck(0).cells(),
                       /*scrub_async=*/false);
      svc.scrub_bank_now(bank);
    }
  };
  for (std::uint32_t round = 0; round < kStrikes + 1; ++round) converge_round();
  const DegradationReport before = svc.degradation_report();
  for (std::uint32_t round = 0; round < kStrikes + 1; ++round) converge_round();
  const DegradationReport after = svc.degradation_report();

  // Stable set, some lines actually retired, none spilled past the pool.
  EXPECT_GT(after.retired_mapped, 0u);
  EXPECT_EQ(after.retired_unmapped, 0u);
  ASSERT_EQ(before.banks.size(), after.banks.size());
  for (std::uint32_t bank = 0; bank < kBanks; ++bank) {
    EXPECT_EQ(before.banks[bank].retired_lines, after.banks[bank].retired_lines)
        << "retired set must be stable, bank " << bank;
  }
  EXPECT_DOUBLE_EQ(after.healthy_fraction(), 1.0);

  // Retirement happened exactly once per line: the counter agrees with the
  // set cardinality.
  obs::MetricsRegistry merged;
  svc.merge_metrics_into(merged);
  EXPECT_EQ(merged.find_counter("service.retired_lines")->value(),
            after.retired_mapped + after.retired_unmapped);
  EXPECT_EQ(merged.find_counter("service.retire.pool_exhausted")->value(), 0u);

  // Zero SDC: every address — spare-served or in place — still returns its
  // last committed payload.
  std::uint64_t mismatches = 0;
  ClientStats audit;
  for (std::uint64_t addr = 0; addr < num_addrs; ++addr) {
    const ReadStatus status = svc.read(addr, audit, buf);
    ASSERT_NE(static_cast<int>(status), static_cast<int>(ReadStatus::kDue))
        << "addr " << addr;
    std::uint64_t seq = 0;
    if (!payload_intact(buf, addr, &seq) || seq != committed[addr].load()) {
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u);
  // The audit walked every retired line through the spare path.
  EXPECT_EQ(audit.registry().find_counter("service.read.retired")->value(),
            after.retired_mapped);
}

// ---- repair queue -----------------------------------------------------

TEST(ServiceRepairQueue, DrainIsAFenceForQueuedScrubs) {
  const auto cfg = small_z_config();
  MemoryService svc({.banks = 2, .repair_workers = 2},
                    [&](std::uint32_t) { return make_sudoku_backend(cfg); });
  svc.format_zero();

  constexpr int kSweeps = 24;
  for (int i = 0; i < kSweeps; ++i) svc.scrub_bank_async(i % 2);
  svc.drain();
  EXPECT_EQ(svc.queue_depth(), 0u);
  EXPECT_GE(svc.queue_depth_max(), 1u);

  obs::MetricsRegistry merged;
  svc.merge_metrics_into(merged);
  const obs::Counter* tasks = merged.find_counter("service.repair.tasks");
  ASSERT_NE(tasks, nullptr);
  EXPECT_EQ(tasks->value(), static_cast<std::uint64_t>(kSweeps));
  const obs::Counter* units = merged.find_counter("service.repair.units_scrubbed");
  ASSERT_NE(units, nullptr);
  EXPECT_EQ(units->value(), kSweeps * cfg.geo.num_lines);
}

// ---- load generator ---------------------------------------------------

TEST(LoadGen, ClosedLoopAccountingAddsUp) {
  const auto cfg = small_z_config();
  MemoryService svc({.banks = 2, .repair_workers = 1},
                    [&](std::uint32_t) { return make_sudoku_backend(cfg); });
  svc.format_zero();

  LoadConfig lcfg;
  lcfg.clients = 3;
  lcfg.ops_per_client = 500;  // op-bounded: deterministic op count
  lcfg.duration_ms = 10000;   // irrelevant once op-bounded
  lcfg.seed = 42;
  const LoadReport rep = run_load(svc, lcfg);

  EXPECT_EQ(rep.ops, 3u * 500u);
  EXPECT_EQ(rep.reads + rep.writes, rep.ops);
  EXPECT_GT(rep.reads, 0u);
  EXPECT_GT(rep.writes, 0u);
  EXPECT_GT(rep.qps, 0.0);
  EXPECT_EQ(rep.read_latency_ns.count, rep.reads);
  EXPECT_GT(rep.read_latency_ns.p99, 0.0);
  EXPECT_GE(rep.read_latency_ns.p999, rep.read_latency_ns.p50);

  // Client counters made it into the merged registry.
  const obs::Counter* writes = rep.metrics.find_counter("service.write.count");
  ASSERT_NE(writes, nullptr);
  EXPECT_EQ(writes->value(), rep.writes);
  const obs::Counter* fast = rep.metrics.find_counter("service.read.fast");
  ASSERT_NE(fast, nullptr);
  EXPECT_GT(fast->value(), 0u);
}

TEST(LoadGen, OpenLoopWithInjectionRunsAndDrains) {
  const auto cfg = small_z_config();
  MemoryService svc({.banks = 2, .repair_workers = 1},
                    [&](std::uint32_t) { return make_sudoku_backend(cfg); });
  svc.format_zero();

  LoadConfig lcfg;
  lcfg.clients = 2;
  lcfg.open_loop = true;
  lcfg.open_loop_rate = 50000.0;
  lcfg.duration_ms = 50;
  lcfg.ber_per_interval = 1e-5;
  lcfg.inject_interval_ms = 5;
  lcfg.seed = 43;
  const LoadReport rep = run_load(svc, lcfg);

  EXPECT_GT(rep.ops, 0u);
  EXPECT_EQ(rep.reads + rep.writes, rep.ops);
  EXPECT_EQ(svc.queue_depth(), 0u);  // run_load drains before reporting
  const obs::Counter* tasks = rep.metrics.find_counter("service.repair.tasks");
  ASSERT_NE(tasks, nullptr);
  EXPECT_GT(tasks->value(), 0u);  // injection queued background scrubs
}

// ---- Hi-ECC backend ---------------------------------------------------

TEST(HiEccBackend, LineRoundTripAndRegionGeometry) {
  auto backend = make_hiecc_backend(256);
  EXPECT_EQ(backend->num_lines(), 256u);
  EXPECT_EQ(backend->num_units(), 16u);  // 16 lines per 1 KB region
  EXPECT_EQ(backend->unit_of_line(0), 0u);
  EXPECT_EQ(backend->unit_of_line(15), 0u);
  EXPECT_EQ(backend->unit_of_line(16), 1u);

  backend->format([](std::uint64_t line) { return payload(line, 0); });
  for (const std::uint64_t line : {0ull, 15ull, 16ull, 255ull}) {
    const ReadReply reply = backend->read(line);
    EXPECT_EQ(static_cast<int>(reply.status), static_cast<int>(ReadStatus::kClean));
    EXPECT_EQ(reply.data, payload(line, 0)) << line;
  }

  // A write must leave the other 15 lines of its region intact.
  backend->write(17, payload(17, 5));
  EXPECT_EQ(backend->read(17).data, payload(17, 5));
  EXPECT_EQ(backend->read(16).data, payload(16, 0));
  EXPECT_EQ(backend->read(31).data, payload(31, 0));
}

TEST(HiEccBackend, CorrectsUpToTAndDeclaresDueBeyond) {
  auto backend = make_hiecc_backend(256);
  backend->format([](std::uint64_t line) { return payload(line, 0); });

  // 6 faults in region 2: within ECC-6's budget, read corrects in place.
  FaultBatch six;
  six[2] = {1, 100, 515, 3000, 7000, 8200};
  backend->inject(six);
  EXPECT_EQ(static_cast<int>(backend->read(32).status),
            static_cast<int>(ReadStatus::kCorrected));
  EXPECT_EQ(backend->read(32).data, payload(32, 0));
  EXPECT_EQ(static_cast<int>(backend->read(33).status),
            static_cast<int>(ReadStatus::kClean));  // read-scrub repaired it

  // 8 faults in region 5: uncorrectable, every line of the region is lost.
  FaultBatch eight;
  eight[5] = {1, 2, 3, 600, 601, 602, 5000, 5001};
  backend->inject(eight);
  EXPECT_EQ(static_cast<int>(backend->read(80).status),
            static_cast<int>(ReadStatus::kDue));
  const std::uint64_t units[] = {5};
  EXPECT_EQ(backend->scrub_units(units), 1u);

  // try_clean_read refuses faulty regions and accepts clean ones.
  BitVec scratch, data;
  EXPECT_FALSE(backend->try_clean_read(80, scratch, data));
  ASSERT_TRUE(backend->try_clean_read(0, scratch, data));
  EXPECT_EQ(data, payload(0, 0));
}

}  // namespace
}  // namespace sudoku::service
