#include "common/bitvec.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sudoku {
namespace {

TEST(BitVec, StartsZeroed) {
  BitVec v(553);
  EXPECT_EQ(v.size(), 553u);
  EXPECT_TRUE(v.none());
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, SetResetFlipTest) {
  BitVec v(100);
  v.set(0);
  v.set(63);
  v.set(64);
  v.set(99);
  EXPECT_TRUE(v.test(0));
  EXPECT_TRUE(v.test(63));
  EXPECT_TRUE(v.test(64));
  EXPECT_TRUE(v.test(99));
  EXPECT_FALSE(v.test(1));
  EXPECT_EQ(v.popcount(), 4u);
  v.reset(63);
  EXPECT_FALSE(v.test(63));
  v.flip(63);
  EXPECT_TRUE(v.test(63));
  v.flip(63);
  EXPECT_FALSE(v.test(63));
  EXPECT_EQ(v.popcount(), 3u);
}

TEST(BitVec, AssignMatchesSetReset) {
  BitVec v(10);
  v.assign(3, true);
  EXPECT_TRUE(v.test(3));
  v.assign(3, false);
  EXPECT_FALSE(v.test(3));
}

TEST(BitVec, XorIsSelfInverse) {
  Rng rng(7);
  BitVec a(553), b(553);
  for (int i = 0; i < 100; ++i) a.flip(rng.next_below(553));
  for (int i = 0; i < 100; ++i) b.flip(rng.next_below(553));
  BitVec c = a;
  c ^= b;
  c ^= b;
  EXPECT_EQ(c, a);
}

TEST(BitVec, XorComputesSymmetricDifference) {
  BitVec a(8), b(8);
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(3);
  const BitVec c = a ^ b;
  EXPECT_TRUE(c.test(1));
  EXPECT_FALSE(c.test(2));
  EXPECT_TRUE(c.test(3));
  EXPECT_EQ(c.popcount(), 2u);
}

TEST(BitVec, SetPositionsAscending) {
  BitVec v(553);
  v.set(5);
  v.set(64);
  v.set(552);
  const auto pos = v.set_positions();
  ASSERT_EQ(pos.size(), 3u);
  EXPECT_EQ(pos[0], 5u);
  EXPECT_EQ(pos[1], 64u);
  EXPECT_EQ(pos[2], 552u);
}

TEST(BitVec, SetPositionsHonorsLimit) {
  BitVec v(100);
  for (int i = 0; i < 20; ++i) v.set(i * 5);
  EXPECT_EQ(v.set_positions(7).size(), 7u);
  EXPECT_EQ(v.set_positions(0).size(), 20u);
}

TEST(BitVec, DistanceCountsDifferingBits) {
  BitVec a(64), b(64);
  a.set(0);
  a.set(10);
  b.set(10);
  b.set(20);
  EXPECT_EQ(a.distance(b), 2u);
  EXPECT_EQ(a.distance(a), 0u);
}

TEST(BitVec, ClearZeroesEverything) {
  BitVec v(130);
  v.set(0);
  v.set(129);
  v.clear();
  EXPECT_TRUE(v.none());
  EXPECT_EQ(v.size(), 130u);
}

TEST(BitVec, ResizePreservesPrefix) {
  BitVec v(64);
  v.set(10);
  v.resize(128);
  EXPECT_TRUE(v.test(10));
  EXPECT_FALSE(v.test(100));
  EXPECT_EQ(v.size(), 128u);
}

TEST(BitVec, EqualityIsValueBased) {
  BitVec a(65), b(65);
  EXPECT_EQ(a, b);
  a.set(64);
  EXPECT_NE(a, b);
  b.set(64);
  EXPECT_EQ(a, b);
}

TEST(BitVec, AnyReflectsContents) {
  BitVec v(553);
  EXPECT_FALSE(v.any());
  v.set(552);
  EXPECT_TRUE(v.any());
}

TEST(BitVec, ToStringMatchesBits) {
  BitVec v(4);
  v.set(1);
  v.set(3);
  EXPECT_EQ(v.to_string(), "0101");
}

TEST(BitVec, GetBitsMatchesPerBitReads) {
  BitVec v(200);
  for (std::size_t i = 0; i < 200; i += 3) v.set(i);
  v.set(63);
  v.set(64);
  v.set(127);
  for (const std::size_t pos : {std::size_t{0}, std::size_t{1}, std::size_t{60},
                                std::size_t{63}, std::size_t{64}, std::size_t{100},
                                std::size_t{136}}) {
    for (const unsigned nbits : {1u, 7u, 31u, 32u, 63u, 64u}) {
      if (pos + nbits > 200) continue;
      const std::uint64_t got = v.get_bits(pos, nbits);
      for (unsigned b = 0; b < nbits; ++b) {
        EXPECT_EQ((got >> b) & 1u, v.test(pos + b) ? 1u : 0u)
            << "pos " << pos << " nbits " << nbits << " b " << b;
      }
      if (nbits < 64) {
        EXPECT_EQ(got >> nbits, 0u);
      }
    }
  }
}

TEST(BitVec, SetBitsRoundTripsAndPreservesNeighbours) {
  for (const std::size_t pos : {std::size_t{0}, std::size_t{33}, std::size_t{63},
                                std::size_t{64}, std::size_t{90}}) {
    for (const unsigned nbits : {1u, 13u, 31u, 64u}) {
      BitVec v(200);
      for (std::size_t i = 0; i < 200; ++i)
        if (i % 2) v.set(i);
      const BitVec before = v;
      const std::uint64_t value = 0xA5C3F00D12345678ull;
      v.set_bits(pos, nbits, value);
      EXPECT_EQ(v.get_bits(pos, nbits),
                nbits == 64 ? value : (value & ((std::uint64_t{1} << nbits) - 1)));
      for (std::size_t i = 0; i < 200; ++i) {
        if (i >= pos && i < pos + nbits) continue;
        EXPECT_EQ(v.test(i), before.test(i)) << "pos " << pos << " nbits " << nbits
                                             << " neighbour " << i;
      }
    }
  }
}

// The word-parallel comparison/distance kernels must agree with per-bit
// scans, including awkward tail widths (the scrub and SDC-verify paths
// lean on them every interval).
TEST(BitVec, DistanceAndEqualityAgreeWithPerBitScan) {
  std::uint64_t state = 42;
  for (const std::size_t n : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                              std::size_t{65}, std::size_t{553}, std::size_t{574}}) {
    BitVec a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (splitmix64_next(state) & 1) a.set(i);
      if (splitmix64_next(state) & 1) b.set(i);
    }
    std::size_t manual = 0;
    for (std::size_t i = 0; i < n; ++i) manual += a.test(i) != b.test(i);
    EXPECT_EQ(a.distance(b), manual) << "n " << n;
    EXPECT_EQ(a == b, manual == 0) << "n " << n;
    BitVec c = a;
    EXPECT_EQ(a.distance(c), 0u);
    EXPECT_EQ(a, c);
    if (n > 1) {
      c.flip(n - 1);  // tail-word bit
      EXPECT_EQ(a.distance(c), 1u) << "n " << n;
      EXPECT_NE(a, c) << "n " << n;
    }
  }
}

}  // namespace
}  // namespace sudoku
