#include "common/bitvec.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sudoku {
namespace {

TEST(BitVec, StartsZeroed) {
  BitVec v(553);
  EXPECT_EQ(v.size(), 553u);
  EXPECT_TRUE(v.none());
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, SetResetFlipTest) {
  BitVec v(100);
  v.set(0);
  v.set(63);
  v.set(64);
  v.set(99);
  EXPECT_TRUE(v.test(0));
  EXPECT_TRUE(v.test(63));
  EXPECT_TRUE(v.test(64));
  EXPECT_TRUE(v.test(99));
  EXPECT_FALSE(v.test(1));
  EXPECT_EQ(v.popcount(), 4u);
  v.reset(63);
  EXPECT_FALSE(v.test(63));
  v.flip(63);
  EXPECT_TRUE(v.test(63));
  v.flip(63);
  EXPECT_FALSE(v.test(63));
  EXPECT_EQ(v.popcount(), 3u);
}

TEST(BitVec, AssignMatchesSetReset) {
  BitVec v(10);
  v.assign(3, true);
  EXPECT_TRUE(v.test(3));
  v.assign(3, false);
  EXPECT_FALSE(v.test(3));
}

TEST(BitVec, XorIsSelfInverse) {
  Rng rng(7);
  BitVec a(553), b(553);
  for (int i = 0; i < 100; ++i) a.flip(rng.next_below(553));
  for (int i = 0; i < 100; ++i) b.flip(rng.next_below(553));
  BitVec c = a;
  c ^= b;
  c ^= b;
  EXPECT_EQ(c, a);
}

TEST(BitVec, XorComputesSymmetricDifference) {
  BitVec a(8), b(8);
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(3);
  const BitVec c = a ^ b;
  EXPECT_TRUE(c.test(1));
  EXPECT_FALSE(c.test(2));
  EXPECT_TRUE(c.test(3));
  EXPECT_EQ(c.popcount(), 2u);
}

TEST(BitVec, SetPositionsAscending) {
  BitVec v(553);
  v.set(5);
  v.set(64);
  v.set(552);
  const auto pos = v.set_positions();
  ASSERT_EQ(pos.size(), 3u);
  EXPECT_EQ(pos[0], 5u);
  EXPECT_EQ(pos[1], 64u);
  EXPECT_EQ(pos[2], 552u);
}

TEST(BitVec, SetPositionsHonorsLimit) {
  BitVec v(100);
  for (int i = 0; i < 20; ++i) v.set(i * 5);
  EXPECT_EQ(v.set_positions(7).size(), 7u);
  EXPECT_EQ(v.set_positions(0).size(), 20u);
}

TEST(BitVec, DistanceCountsDifferingBits) {
  BitVec a(64), b(64);
  a.set(0);
  a.set(10);
  b.set(10);
  b.set(20);
  EXPECT_EQ(a.distance(b), 2u);
  EXPECT_EQ(a.distance(a), 0u);
}

TEST(BitVec, ClearZeroesEverything) {
  BitVec v(130);
  v.set(0);
  v.set(129);
  v.clear();
  EXPECT_TRUE(v.none());
  EXPECT_EQ(v.size(), 130u);
}

TEST(BitVec, ResizePreservesPrefix) {
  BitVec v(64);
  v.set(10);
  v.resize(128);
  EXPECT_TRUE(v.test(10));
  EXPECT_FALSE(v.test(100));
  EXPECT_EQ(v.size(), 128u);
}

TEST(BitVec, EqualityIsValueBased) {
  BitVec a(65), b(65);
  EXPECT_EQ(a, b);
  a.set(64);
  EXPECT_NE(a, b);
  b.set(64);
  EXPECT_EQ(a, b);
}

TEST(BitVec, AnyReflectsContents) {
  BitVec v(553);
  EXPECT_FALSE(v.any());
  v.set(552);
  EXPECT_TRUE(v.any());
}

TEST(BitVec, ToStringMatchesBits) {
  BitVec v(4);
  v.set(1);
  v.set(3);
  EXPECT_EQ(v.to_string(), "0101");
}

}  // namespace
}  // namespace sudoku
