// Differential tests for the word-at-a-time codec kernels (docs/perf.md):
// the slicing-by-8 CRC, the parity-mask Hamming syndrome and the per-word
// Horner BCH syndromes must be *bit-identical* to their bit-serial oracles
// on random payloads and random <=6-bit error masks — the "bit-identical
// or it doesn't ship" rule. Every assertion prints the trial seed so a
// failure replays from the command line (same style as the PR 2 codec
// property test).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "codes/bch.h"
#include "codes/crc31.h"
#include "codes/hamming.h"
#include "common/rng.h"
#include "sudoku/line_codec.h"

namespace sudoku {
namespace {

constexpr int kTrials = 10000;  // >= 1e4 random cases per kernel pair
constexpr std::uint64_t kBaseSeed = 0xc0dec5eedull;

BitVec random_bits(std::size_t n, Rng& rng) {
  BitVec v(n);
  auto w = v.words();
  for (auto& word : w) word = rng.next_u64();
  if (n % 64) w[w.size() - 1] &= (std::uint64_t{1} << (n % 64)) - 1;
  return v;
}

// Flip a random mask of <= max_weight distinct bits; returns the mask size.
std::size_t inject(BitVec& v, Rng& rng, int max_weight) {
  const int weight = static_cast<int>(rng.next_below(max_weight + 1));
  std::set<std::uint64_t> mask;
  while (static_cast<int>(mask.size()) < weight) mask.insert(rng.next_below(v.size()));
  for (const auto bit : mask) v.flip(bit);
  return mask.size();
}

TEST(CodecKernels, CrcSlicingMatchesBitSerialOracle) {
  const Crc31 crc;
  for (int trial = 0; trial < kTrials; ++trial) {
    const std::uint64_t seed = kBaseSeed + static_cast<std::uint64_t>(trial);
    Rng rng(seed);
    // Mix of the codec's real lengths and awkward non-aligned ones.
    static constexpr std::size_t kLens[] = {512, 543, 553, 64, 65, 127, 300, 611};
    const std::size_t n = kLens[trial % 8];
    BitVec data = random_bits(n, rng);
    inject(data, rng, 6);
    const std::uint32_t oracle = crc.compute_bitserial(data, n);
    ASSERT_EQ(crc.compute(data, n), oracle) << "seed " << seed << " len " << n;
    ASSERT_EQ(crc.compute_bytewise(data, n), oracle) << "seed " << seed << " len " << n;
  }
}

TEST(CodecKernels, CrcSlicingMatchesOracleOnPrefixLengths) {
  // Every prefix length of one buffer, exercising all word/byte/bit tail
  // splits of the slicing kernel.
  const Crc31 crc;
  Rng rng(kBaseSeed);
  const BitVec data = random_bits(700, rng);
  for (std::size_t n = 0; n <= 700; ++n) {
    ASSERT_EQ(crc.compute(data, n), crc.compute_bitserial(data, n)) << "len " << n;
  }
}

TEST(CodecKernels, HammingMaskSyndromeMatchesReference) {
  const Hamming h(LineCodec::kMessageBits);  // the 543->553 production code
  for (int trial = 0; trial < kTrials; ++trial) {
    const std::uint64_t seed = kBaseSeed + 1 + static_cast<std::uint64_t>(trial);
    Rng rng(seed);
    BitVec cw = random_bits(h.codeword_bits(), rng);
    h.encode(cw);
    inject(cw, rng, 6);
    ASSERT_EQ(h.syndrome(cw), h.syndrome_reference(cw)) << "seed " << seed;
  }
}

TEST(CodecKernels, HammingDecodeOutcomeMatchesReferenceSyndromePath) {
  // decode() consumes the fast syndrome; replaying its decision rule on
  // the reference syndrome must give the same outcome and the same
  // corrected codeword.
  const Hamming h(LineCodec::kMessageBits);
  for (int trial = 0; trial < kTrials; ++trial) {
    const std::uint64_t seed = kBaseSeed + 2 + static_cast<std::uint64_t>(trial);
    Rng rng(seed);
    BitVec cw = random_bits(h.codeword_bits(), rng);
    h.encode(cw);
    const std::size_t weight = inject(cw, rng, 6);
    const std::uint32_t ref_syn = h.syndrome_reference(cw);
    BitVec decoded = cw;
    const auto status = h.decode(decoded);
    switch (status) {
      case Hamming::DecodeStatus::kClean:
        ASSERT_EQ(ref_syn, 0u) << "seed " << seed;
        ASSERT_EQ(decoded, cw) << "seed " << seed;
        break;
      case Hamming::DecodeStatus::kCorrected:
        ASSERT_NE(ref_syn, 0u) << "seed " << seed;
        ASSERT_EQ(decoded.distance(cw), 1u) << "seed " << seed;
        ASSERT_EQ(h.syndrome_reference(decoded), 0u) << "seed " << seed;
        break;
      case Hamming::DecodeStatus::kUncorrectable:
        ASSERT_NE(ref_syn, 0u) << "seed " << seed;
        ASSERT_EQ(decoded, cw) << "seed " << seed;
        break;
    }
    if (weight <= 1) {
      ASSERT_NE(status, Hamming::DecodeStatus::kUncorrectable) << "seed " << seed;
    }
  }
}

class BchKernels : public ::testing::TestWithParam<int /*t*/> {};

TEST_P(BchKernels, WordHornerSyndromesMatchReference) {
  const int t = GetParam();
  const Bch bch(10, t, 512);
  for (int trial = 0; trial < kTrials; ++trial) {
    const std::uint64_t seed = kBaseSeed + 3 + static_cast<std::uint64_t>(trial);
    Rng rng(seed);
    BitVec cw = random_bits(bch.codeword_bits(), rng);
    for (std::size_t i = 512; i < cw.size(); ++i) cw.reset(i);
    bch.encode(cw);
    const std::size_t weight = inject(cw, rng, 6);
    const auto ref = bch.syndromes_reference(cw);
    ASSERT_EQ(bch.syndromes(cw), ref) << "seed " << seed << " t " << t;
    const bool all_zero = std::all_of(ref.begin(), ref.end(),
                                      [](std::uint32_t s) { return s == 0; });
    ASSERT_EQ(bch.syndromes_zero(cw), all_zero) << "seed " << seed << " t " << t;
    // Zero syndromes mean the mask is itself a codeword, impossible below
    // the design distance 2t+1 (heavier masks may legitimately alias).
    if (all_zero) {
      ASSERT_TRUE(weight == 0 || weight > 2 * static_cast<std::size_t>(t))
          << "seed " << seed << " t " << t;
    } else {
      ASSERT_GT(weight, 0u) << "seed " << seed << " t " << t;
    }
  }
}

TEST_P(BchKernels, DecodeOutcomesLawfulUnderRandomMasks) {
  // End-to-end decode over the fast syndromes: <= t faults must be
  // corrected back to the golden codeword; heavier masks either correct
  // exactly, report uncorrectable, or miscorrect to *some* valid codeword
  // — but the returned status must always match the observed effect.
  const int t = GetParam();
  const Bch bch(10, t, 512);
  for (int trial = 0; trial < kTrials / 4; ++trial) {  // decode is pricier
    const std::uint64_t seed = kBaseSeed + 4 + static_cast<std::uint64_t>(trial);
    Rng rng(seed);
    BitVec golden = random_bits(bch.codeword_bits(), rng);
    for (std::size_t i = 512; i < golden.size(); ++i) golden.reset(i);
    bch.encode(golden);
    BitVec cw = golden;
    const std::size_t weight = inject(cw, rng, 6);
    BitVec decoded = cw;
    const auto res = bch.decode(decoded);
    switch (res.status) {
      case Bch::DecodeStatus::kClean:
        // A heavier-than-design-distance mask may land on another valid
        // codeword; below 2t+1 flips, clean means genuinely untouched.
        ASSERT_TRUE(weight == 0 || weight > 2 * static_cast<std::size_t>(t))
            << "seed " << seed << " t " << t;
        ASSERT_EQ(decoded, cw) << "seed " << seed << " t " << t;
        break;
      case Bch::DecodeStatus::kCorrected:
        ASSERT_EQ(static_cast<std::size_t>(res.corrected), decoded.distance(cw))
            << "seed " << seed << " t " << t;
        ASSERT_TRUE(bch.syndromes_zero(decoded)) << "seed " << seed << " t " << t;
        if (weight <= static_cast<std::size_t>(t)) {
          ASSERT_EQ(decoded, golden) << "seed " << seed << " t " << t;
        }
        break;
      case Bch::DecodeStatus::kUncorrectable:
        ASSERT_GT(weight, static_cast<std::size_t>(t)) << "seed " << seed << " t " << t;
        ASSERT_EQ(decoded, cw) << "seed " << seed << " t " << t;
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Strengths, BchKernels, ::testing::Values(1, 2, 3, 6),
                         [](const ::testing::TestParamInfo<int>& info) {
                           // Lvalue operand: the char* + string&& overload hits
                           // GCC 12's -Wrestrict false positive (PR 105329).
                           const std::string t = std::to_string(info.param);
                           return "t" + t;
                         });

TEST(CodecKernels, HiEccWidthBchSyndromesMatchReference) {
  // The m=14 Hi-ECC geometry (8192-bit payload) has a different tail
  // split; a shorter sweep keeps the suite fast while covering it.
  const Bch bch(14, 6, 8192);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t seed = kBaseSeed + 5 + static_cast<std::uint64_t>(trial);
    Rng rng(seed);
    BitVec cw = random_bits(bch.codeword_bits(), rng);
    for (std::size_t i = 8192; i < cw.size(); ++i) cw.reset(i);
    bch.encode(cw);
    inject(cw, rng, 6);
    ASSERT_EQ(bch.syndromes(cw), bch.syndromes_reference(cw)) << "seed " << seed;
  }
}

TEST(CodecKernels, LineCodecEncodeFieldLayoutIntact) {
  // The word-level encode/extract must reproduce the documented layout:
  // [data 512 | CRC-31(data) | inner ECC]. Cross-check field by field.
  for (const int t : {1, 2}) {
    const LineCodec codec(t);
    Rng rng(kBaseSeed + 6 + static_cast<std::uint64_t>(t));
    for (int trial = 0; trial < 1000; ++trial) {
      BitVec data = random_bits(LineCodec::kDataBits, rng);
      const BitVec stored = codec.encode(data);
      for (std::uint32_t i = 0; i < LineCodec::kDataBits; ++i) {
        ASSERT_EQ(stored.test(i), data.test(i)) << "trial " << trial;
      }
      const Crc31 crc;
      const std::uint32_t want = crc.compute_bitserial(data, LineCodec::kDataBits);
      for (std::uint32_t b = 0; b < LineCodec::kCrcBits; ++b) {
        ASSERT_EQ(stored.test(LineCodec::kDataBits + b), ((want >> b) & 1u) != 0)
            << "trial " << trial;
      }
      ASSERT_EQ(codec.extract_data(stored), data) << "trial " << trial;
      ASSERT_TRUE(codec.fully_clean(stored)) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace sudoku
