#include "sttram/fault_injector.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace sudoku {
namespace {

TEST(SttramArray, ReadWriteRoundTrip) {
  SttramArray arr(16, 553);
  BitVec v(553);
  v.set(0);
  v.set(511);
  v.set(552);
  arr.write_line(7, v);
  EXPECT_EQ(arr.read_line(7), v);
  EXPECT_TRUE(arr.read_line(6).none());
}

TEST(SttramArray, FlipAndTest) {
  SttramArray arr(4, 553);
  EXPECT_FALSE(arr.test(2, 100));
  arr.flip(2, 100);
  EXPECT_TRUE(arr.test(2, 100));
  arr.flip(2, 100);
  EXPECT_FALSE(arr.test(2, 100));
}

TEST(SttramArray, LinesAreIndependent) {
  SttramArray arr(8, 553);
  arr.flip(3, 552);
  for (std::uint64_t l = 0; l < 8; ++l) {
    if (l == 3) continue;
    EXPECT_TRUE(arr.read_line(l).none()) << l;
  }
}

TEST(SttramArray, XorLineIntoAccumulates) {
  SttramArray arr(4, 100);
  BitVec a(100), b(100);
  a.set(5);
  a.set(50);
  b.set(50);
  b.set(99);
  arr.write_line(0, a);
  arr.write_line(1, b);
  BitVec acc(100);
  arr.xor_line_into(0, acc);
  arr.xor_line_into(1, acc);
  EXPECT_TRUE(acc.test(5));
  EXPECT_FALSE(acc.test(50));
  EXPECT_TRUE(acc.test(99));
}

TEST(SttramArray, LineEquals) {
  SttramArray arr(2, 64);
  BitVec v(64);
  v.set(63);
  arr.write_line(1, v);
  EXPECT_TRUE(arr.line_equals(1, v));
  v.flip(0);
  EXPECT_FALSE(arr.line_equals(1, v));
}

TEST(FaultInjector, CountMatchesBatchContents) {
  Rng rng(1);
  FaultInjector inj(1024, 553, 1e-4);
  const auto batch = inj.sample_interval(rng);
  std::uint64_t manual = 0;
  for (const auto& [line, bits] : batch) manual += bits.size();
  EXPECT_EQ(FaultInjector::count(batch), manual);
}

TEST(FaultInjector, MeanFaultCountMatchesBer) {
  Rng rng(2);
  const std::uint64_t lines = 4096;
  const std::uint32_t bits = 553;
  const double ber = 1e-4;
  FaultInjector inj(lines, bits, ber);
  double total = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) total += static_cast<double>(FaultInjector::count(inj.sample_interval(rng)));
  const double expected = static_cast<double>(lines) * bits * ber;
  EXPECT_NEAR(total / trials, expected, expected * 0.1);
}

TEST(FaultInjector, PositionsAreInRange) {
  Rng rng(3);
  FaultInjector inj(128, 553, 1e-3);
  const auto batch = inj.sample_interval(rng);
  for (const auto& [line, bitsv] : batch) {
    EXPECT_LT(line, 128u);
    for (const auto b : bitsv) EXPECT_LT(b, 553u);
  }
}

TEST(FaultInjector, NoDuplicateBitWithinLine) {
  Rng rng(4);
  FaultInjector inj(4, 64, 0.2);  // dense enough to force collisions
  for (int t = 0; t < 50; ++t) {
    const auto batch = inj.sample_interval(rng);
    for (const auto& [line, bitsv] : batch) {
      auto sorted = bitsv;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());
    }
  }
}

TEST(FaultInjector, ApplyFlipsExactlyTheBatch) {
  Rng rng(5);
  SttramArray arr(64, 553);
  FaultInjector inj(64, 553, 1e-3);
  const auto batch = inj.sample_interval(rng);
  FaultInjector::apply(batch, arr);
  std::uint64_t set_bits = 0;
  for (std::uint64_t l = 0; l < 64; ++l) set_bits += arr.read_line(l).popcount();
  EXPECT_EQ(set_bits, FaultInjector::count(batch));
  // Applying again cancels everything.
  FaultInjector::apply(batch, arr);
  for (std::uint64_t l = 0; l < 64; ++l) EXPECT_TRUE(arr.read_line(l).none());
}

TEST(FaultInjector, ZeroBerProducesNoFaults) {
  Rng rng(6);
  FaultInjector inj(1024, 553, 0.0);
  EXPECT_TRUE(inj.sample_interval(rng).empty());
}

TEST(FaultInjector, FaultsSpreadAcrossLines) {
  Rng rng(7);
  const std::uint64_t lines = 1u << 16;
  FaultInjector inj(lines, 553, 3e-5);  // ~1000 faults, mostly distinct lines
  const auto batch = inj.sample_interval(rng);
  std::uint64_t multi = 0;
  for (const auto& [line, bitsv] : batch)
    if (bitsv.size() >= 2) ++multi;
  // Multi-fault lines must be a small minority (birthday-problem level).
  EXPECT_LT(multi * 20, batch.size() + 1);
}

}  // namespace
}  // namespace sudoku
