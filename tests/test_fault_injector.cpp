#include "sttram/fault_injector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

namespace sudoku {
namespace {

TEST(SttramArray, ReadWriteRoundTrip) {
  SttramArray arr(16, 553);
  BitVec v(553);
  v.set(0);
  v.set(511);
  v.set(552);
  arr.write_line(7, v);
  EXPECT_EQ(arr.read_line(7), v);
  EXPECT_TRUE(arr.read_line(6).none());
}

TEST(SttramArray, FlipAndTest) {
  SttramArray arr(4, 553);
  EXPECT_FALSE(arr.test(2, 100));
  arr.flip(2, 100);
  EXPECT_TRUE(arr.test(2, 100));
  arr.flip(2, 100);
  EXPECT_FALSE(arr.test(2, 100));
}

TEST(SttramArray, LinesAreIndependent) {
  SttramArray arr(8, 553);
  arr.flip(3, 552);
  for (std::uint64_t l = 0; l < 8; ++l) {
    if (l == 3) continue;
    EXPECT_TRUE(arr.read_line(l).none()) << l;
  }
}

TEST(SttramArray, XorLineIntoAccumulates) {
  SttramArray arr(4, 100);
  BitVec a(100), b(100);
  a.set(5);
  a.set(50);
  b.set(50);
  b.set(99);
  arr.write_line(0, a);
  arr.write_line(1, b);
  BitVec acc(100);
  arr.xor_line_into(0, acc);
  arr.xor_line_into(1, acc);
  EXPECT_TRUE(acc.test(5));
  EXPECT_FALSE(acc.test(50));
  EXPECT_TRUE(acc.test(99));
}

TEST(SttramArray, LineEquals) {
  SttramArray arr(2, 64);
  BitVec v(64);
  v.set(63);
  arr.write_line(1, v);
  EXPECT_TRUE(arr.line_equals(1, v));
  v.flip(0);
  EXPECT_FALSE(arr.line_equals(1, v));
}

TEST(FaultInjector, CountMatchesBatchContents) {
  Rng rng(1);
  FaultInjector inj(1024, 553, 1e-4);
  const auto batch = inj.sample_interval(rng);
  std::uint64_t manual = 0;
  for (const auto& [line, bits] : batch) manual += bits.size();
  EXPECT_EQ(FaultInjector::count(batch), manual);
}

TEST(FaultInjector, MeanFaultCountMatchesBer) {
  Rng rng(2);
  const std::uint64_t lines = 4096;
  const std::uint32_t bits = 553;
  const double ber = 1e-4;
  FaultInjector inj(lines, bits, ber);
  double total = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) total += static_cast<double>(FaultInjector::count(inj.sample_interval(rng)));
  const double expected = static_cast<double>(lines) * bits * ber;
  EXPECT_NEAR(total / trials, expected, expected * 0.1);
}

TEST(FaultInjector, PositionsAreInRange) {
  Rng rng(3);
  FaultInjector inj(128, 553, 1e-3);
  const auto batch = inj.sample_interval(rng);
  for (const auto& [line, bitsv] : batch) {
    EXPECT_LT(line, 128u);
    for (const auto b : bitsv) EXPECT_LT(b, 553u);
  }
}

TEST(FaultInjector, NoDuplicateBitWithinLine) {
  Rng rng(4);
  FaultInjector inj(4, 64, 0.2);  // dense enough to force collisions
  for (int t = 0; t < 50; ++t) {
    const auto batch = inj.sample_interval(rng);
    for (const auto& [line, bitsv] : batch) {
      auto sorted = bitsv;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());
    }
  }
}

TEST(FaultInjector, ApplyFlipsExactlyTheBatch) {
  Rng rng(5);
  SttramArray arr(64, 553);
  FaultInjector inj(64, 553, 1e-3);
  const auto batch = inj.sample_interval(rng);
  FaultInjector::apply(batch, arr);
  std::uint64_t set_bits = 0;
  for (std::uint64_t l = 0; l < 64; ++l) set_bits += arr.read_line(l).popcount();
  EXPECT_EQ(set_bits, FaultInjector::count(batch));
  // Applying again cancels everything.
  FaultInjector::apply(batch, arr);
  for (std::uint64_t l = 0; l < 64; ++l) EXPECT_TRUE(arr.read_line(l).none());
}

TEST(FaultInjector, ZeroBerProducesNoFaults) {
  Rng rng(6);
  FaultInjector inj(1024, 553, 0.0);
  EXPECT_TRUE(inj.sample_interval(rng).empty());
}

// Canonical digest of a batch: FNV-style hash over the sorted (line, bit)
// pairs, independent of map iteration order.
std::uint64_t batch_digest(const FaultBatch& batch) {
  std::vector<std::pair<std::uint64_t, std::uint32_t>> flat;
  for (const auto& [line, bits] : batch)
    for (const auto b : bits) flat.emplace_back(line, b);
  std::sort(flat.begin(), flat.end());
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& [l, b] : flat) {
    h ^= l * 0x100000001b3ull + b;
    h *= 0x100000001b3ull;
  }
  return h;
}

// Pins sample_interval's exact output AND its RNG consumption for fixed
// seeds (values recorded from the pre-optimization per-line std::find
// implementation). The hash-set dedup rewrite must change nothing: the
// sampled positions are identical and the Rng is left in the same state,
// so everything drawn afterwards in a trial (host writes, write-error
// flips) replays bit-for-bit.
TEST(FaultInjector, PinnedOutputAndRngConsumptionForFixedSeeds) {
  struct Pin {
    std::uint64_t seed, lines;
    std::uint32_t bits;
    double ber;
    std::size_t n;
    std::uint64_t digest, rng_after;
  };
  // Recorded 2026-08-06 from the pre-rewrite sampler.
  const Pin pins[] = {
      {42, 64, 64, 0.05, 182, 0xe5b4f723fc26106eull, 0xb0f5ba450546f86bull},
      {7, 4096, 553, 1e-4, 224, 0x4616d6a3731676baull, 0x7d6ea8f15bba2752ull},
      {1234, 8, 16, 0.25, 24, 0xab7bb519648ab93dull, 0x57a12c8eee0e019bull},
      {99, 1u << 16, 553, 3e-6, 95, 0xac403e85f4a35c24ull, 0x0f522256fc551a94ull},
  };
  for (const auto& pin : pins) {
    Rng rng(pin.seed);
    FaultInjector inj(pin.lines, pin.bits, pin.ber);
    const auto batch = inj.sample_interval(rng);
    EXPECT_EQ(FaultInjector::count(batch), pin.n) << "seed " << pin.seed;
    EXPECT_EQ(batch_digest(batch), pin.digest) << "seed " << pin.seed;
    EXPECT_EQ(rng.next_u64(), pin.rng_after)
        << "seed " << pin.seed << ": RNG consumption changed";
  }
  // The dense small-space pin (seed 1234) forces many redraw collisions;
  // its exact contents are pinned too.
  Rng rng(1234);
  FaultInjector inj(8, 16, 0.25);
  const auto batch = inj.sample_interval(rng);
  const std::pair<std::uint64_t, std::uint32_t> want[] = {
      {0, 5},  {0, 10}, {0, 12}, {1, 2},  {1, 9},  {1, 13}, {2, 0},  {3, 0},
      {3, 1},  {3, 9},  {4, 0},  {4, 10}, {4, 15}, {5, 2},  {5, 3},  {5, 8},
      {6, 4},  {6, 8},  {6, 10}, {6, 11}, {6, 15}, {7, 2},  {7, 10}, {7, 11},
  };
  std::vector<std::pair<std::uint64_t, std::uint32_t>> flat;
  for (const auto& [line, bits] : batch)
    for (const auto b : bits) flat.emplace_back(line, b);
  std::sort(flat.begin(), flat.end());
  ASSERT_EQ(flat.size(), std::size(want));
  for (std::size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(flat[i], want[i]) << "entry " << i;
  }
}

// Dedup-by-redraw samples *distinct* positions uniformly: conditioning
// i.i.d. uniform draws on all-distinct leaves every distinct set equally
// likely, so the marginal hit count of each position is equal. Verified
// empirically on a small dense space where redraws are frequent.
TEST(FaultInjector, RedrawDedupIsUniformOverPositions) {
  Rng rng(2024);
  const std::uint64_t lines = 4;
  const std::uint32_t bits = 16;  // 64 positions
  FaultInjector inj(lines, bits, 0.15);  // ~10 faults/interval, collisions likely
  std::vector<std::uint64_t> hits(lines * bits, 0);
  std::uint64_t total = 0;
  const int intervals = 20000;
  for (int t = 0; t < intervals; ++t) {
    const auto batch = inj.sample_interval(rng);
    for (const auto& [line, bitsv] : batch)
      for (const auto b : bitsv) {
        ++hits[line * bits + b];
        ++total;
      }
  }
  const double mean = static_cast<double>(total) / static_cast<double>(hits.size());
  // Each position's count is ~Binomial(total, 1/64); 5 sigma of slack.
  const double sigma = std::sqrt(mean * (1.0 - 1.0 / 64.0));
  for (std::size_t p = 0; p < hits.size(); ++p) {
    EXPECT_NEAR(static_cast<double>(hits[p]), mean, 5.0 * sigma) << "position " << p;
  }
}

TEST(FaultInjector, FaultsSpreadAcrossLines) {
  Rng rng(7);
  const std::uint64_t lines = 1u << 16;
  FaultInjector inj(lines, 553, 3e-5);  // ~1000 faults, mostly distinct lines
  const auto batch = inj.sample_interval(rng);
  std::uint64_t multi = 0;
  for (const auto& [line, bitsv] : batch)
    if (bitsv.size() >= 2) ++multi;
  // Multi-fault lines must be a small minority (birthday-problem level).
  EXPECT_LT(multi * 20, batch.size() + 1);
}

TEST(FaultInjectorDeathTest, MoreFaultsThanBitsAbortsInsteadOfSpinning) {
  // A request for more distinct positions than the array has bits has no
  // valid sample; the rejection sampler used to spin forever. It must now
  // abort with a diagnostic.
  FaultInjector inj(2, 8, 0.0);  // 16 bits total
  Rng rng(1);
  EXPECT_DEATH(inj.sample_exact(rng, 17), "16 bits");
}

TEST(FaultInjector, ExactlyFullArrayIsStillValid) {
  // The boundary case nfaults == total_bits is legal: the sample is "every
  // bit", reached after finitely many redraws.
  FaultInjector inj(2, 8, 0.0);
  Rng rng(1);
  const auto batch = inj.sample_exact(rng, 16);
  EXPECT_EQ(FaultInjector::count(batch), 16u);
}

}  // namespace
}  // namespace sudoku
