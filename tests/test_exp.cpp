#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <vector>

#include "baselines/cppc_cache.h"
#include "exp/engine.h"
#include "exp/json.h"
#include "exp/mc_experiments.h"
#include "exp/metrics_io.h"
#include "exp/result_sink.h"
#include "exp/seed_stream.h"
#include "exp/sharder.h"
#include "exp/thread_pool.h"

namespace sudoku::exp {
namespace {

using reliability::McConfig;
using reliability::McResult;

// Small accelerated configuration with observable failure rates so the
// determinism assertions exercise every correction path, in CI time.
McConfig accel_config() {
  McConfig cfg;
  cfg.cache.num_lines = 1ull << 12;
  cfg.cache.group_size = 64;
  cfg.cache.ber = 2e-4;
  cfg.level = SudokuLevel::kX;
  cfg.max_intervals = 200;
  cfg.seed = 42;
  return cfg;
}

void expect_identical(const McResult& a, const McResult& b) {
  EXPECT_EQ(a.intervals, b.intervals);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.ecc1_corrections, b.ecc1_corrections);
  EXPECT_EQ(a.raid4_repairs, b.raid4_repairs);
  EXPECT_EQ(a.sdr_repairs, b.sdr_repairs);
  EXPECT_EQ(a.hash2_invocations, b.hash2_invocations);
  EXPECT_EQ(a.groups_repaired, b.groups_repaired);
  EXPECT_EQ(a.due_lines, b.due_lines);
  EXPECT_EQ(a.sdc_lines, b.sdc_lines);
  EXPECT_EQ(a.failure_intervals, b.failure_intervals);
}

// ---- seed streams ----------------------------------------------------

TEST(SeedStream, DeterministicAndDistinct) {
  const SeedSequence seq(123);
  EXPECT_EQ(seq.stream(0), SeedSequence(123).stream(0));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(seq.stream(i));
  EXPECT_EQ(seeds.size(), 1000u);  // no collisions among trial streams
  EXPECT_NE(seq.stream(0), SeedSequence(124).stream(0));
}

TEST(SeedStream, FormatStreamOutsideTrialRange) {
  const SeedSequence seq(7);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_NE(seq.stream(i), seq.stream(kFormatStream));
  }
}

// ---- sharder ---------------------------------------------------------

TEST(Sharder, CoversRangeExactly) {
  const auto shards = make_shards(1000, 64);
  ASSERT_EQ(shards.size(), 16u);
  std::uint64_t next = 0;
  for (const auto& s : shards) {
    EXPECT_EQ(s.index, static_cast<std::uint64_t>(&s - shards.data()));
    EXPECT_EQ(s.first, next);
    next += s.count;
  }
  EXPECT_EQ(next, 1000u);
  EXPECT_EQ(shards.back().count, 1000u - 15 * 64);
}

TEST(Sharder, EmptyAndOversizedChunks) {
  EXPECT_TRUE(make_shards(0, 64).empty());           // empty plan
  const auto one = make_shards(10, 1000);            // chunk > total
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].count, 10u);
  EXPECT_EQ(make_shards(10, 0).size(), 10u);         // chunk clamped to 1
}

TEST(Sharder, DefaultChunkIsPureAndBounded) {
  EXPECT_EQ(default_chunk(100), default_chunk(100));
  EXPECT_EQ(default_chunk(100), 64u);                // floor
  EXPECT_EQ(default_chunk(1u << 24), 65536u);        // ceiling
  EXPECT_EQ(default_chunk(3200), 200u);              // total / 16
}

TEST(EarlyStopTracker, TriggersOnlyOnContiguousPrefix) {
  EarlyStop early(4, 5);
  EXPECT_FALSE(early.triggered());
  early.record(2, 100);  // out of order: not part of the prefix yet
  EXPECT_FALSE(early.triggered());
  early.record(0, 3);
  EXPECT_FALSE(early.triggered());  // prefix [0,1) has 3 < 5
  early.record(1, 2);               // prefix extends through shard 2
  EXPECT_TRUE(early.triggered());
  EXPECT_EQ(early.prefix_failures(), 105u);
}

TEST(EarlyStopTracker, ZeroTargetNeverTriggers) {
  EarlyStop early(2, 0);
  early.record(0, 50);
  early.record(1, 50);
  EXPECT_FALSE(early.triggered());
}

// ---- thread pool -----------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEachIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::uint64_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedSubmitFromWorker) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&] {
      // Lands on the submitting worker's own deque; thieves may take it.
      pool.submit([&] { count.fetch_add(1); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 10);
}

// ---- thread pool exception propagation --------------------------------

TEST(ThreadPool, ParallelForPropagatesWorkerExceptionAfterJoin) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  // A throwing body must surface as an exception on the calling thread —
  // not std::terminate — and must not wedge the pool.
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::uint64_t i) {
                          ran.fetch_add(1);
                          if (i == 13) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  EXPECT_GT(ran.load(), 0);
  // The pool stays usable after the failed call.
  std::atomic<int> after{0};
  pool.parallel_for(32, [&](std::uint64_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 32);
}

TEST(ThreadPool, ParallelForReportsFirstOfManyExceptions) {
  ThreadPool pool(8);
  try {
    pool.parallel_for(100, [&](std::uint64_t i) {
      throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "parallel_for must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("task "), std::string::npos);
  }
}

TEST(ThreadPool, BareSubmitErrorSurfacesAtWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::logic_error("stray"); });
  EXPECT_THROW(pool.wait_idle(), std::logic_error);
  // The stored error is consumed: the next quiescent wait is clean.
  std::atomic<int> count{0};
  pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

// ---- engine determinism ----------------------------------------------

TEST(ExpEngine, McResultIdenticalAcrossThreadCounts) {
  const auto cfg = accel_config();
  RunStats s1;
  const auto r1 = run_montecarlo_parallel(cfg, {.threads = 1, .chunk = 32}, &s1);
  const auto r2 = run_montecarlo_parallel(cfg, {.threads = 2, .chunk = 32});
  const auto r8 = run_montecarlo_parallel(cfg, {.threads = 8, .chunk = 32});
  EXPECT_EQ(r1.intervals, cfg.max_intervals);
  EXPECT_GT(r1.failure_intervals, 0u);  // the comparison must see events
  expect_identical(r1, r2);
  expect_identical(r1, r8);
  EXPECT_EQ(s1.trials, cfg.max_intervals);
  EXPECT_EQ(s1.threads, 1u);
  EXPECT_GT(s1.wall_seconds, 0.0);
}

TEST(ExpEngine, BaselineResultIdenticalAcrossThreadCounts) {
  baselines::BaselineMcConfig cfg;
  cfg.ber = 2e-4;
  cfg.max_intervals = 96;
  cfg.seed = 5;
  const SchemeFactory factory = [] {
    return std::make_unique<baselines::CppcCache>(1ull << 12);
  };
  const auto r1 = run_baseline_mc_parallel(factory, cfg, {.threads = 1, .chunk = 16});
  const auto r8 = run_baseline_mc_parallel(factory, cfg, {.threads = 8, .chunk = 16});
  EXPECT_EQ(r1.intervals, cfg.max_intervals);
  EXPECT_GT(r1.failure_intervals, 0u);  // CPPC fails nearly every interval
  EXPECT_EQ(r1.faults_injected, r8.faults_injected);
  EXPECT_EQ(r1.corrected, r8.corrected);
  EXPECT_EQ(r1.due_units, r8.due_units);
  EXPECT_EQ(r1.sdc_units, r8.sdc_units);
  EXPECT_EQ(r1.failure_intervals, r8.failure_intervals);
}

TEST(ExpEngine, EarlyStopIsDeterministicAcrossThreadCounts) {
  auto cfg = accel_config();
  cfg.cache.ber = 5e-4;  // nearly every interval fails
  cfg.max_intervals = 10000;
  cfg.target_failures = 12;
  const auto r1 = run_montecarlo_parallel(cfg, {.threads = 1, .chunk = 8});
  const auto r8 = run_montecarlo_parallel(cfg, {.threads = 8, .chunk = 8});
  EXPECT_GE(r1.failure_intervals, cfg.target_failures);
  EXPECT_LT(r1.intervals, cfg.max_intervals);  // stopped far before budget
  expect_identical(r1, r8);
}

TEST(ExpEngine, ZeroIntervalsYieldsEmptyResult) {
  auto cfg = accel_config();
  cfg.max_intervals = 0;  // empty shard plan
  const auto r = run_montecarlo_parallel(cfg, {.threads = 4});
  EXPECT_EQ(r.intervals, 0u);
  EXPECT_EQ(r.faults_injected, 0u);
  EXPECT_EQ(r.failure_intervals, 0u);
}

TEST(ExpEngine, SingleOversizedShard) {
  auto cfg = accel_config();
  cfg.max_intervals = 40;
  // chunk far beyond the budget: the whole run is one shard.
  const auto r1 = run_montecarlo_parallel(cfg, {.threads = 1, .chunk = 100000});
  const auto r4 = run_montecarlo_parallel(cfg, {.threads = 4, .chunk = 100000});
  EXPECT_EQ(r1.intervals, 40u);
  expect_identical(r1, r4);
}

TEST(ExpEngine, McResultMergeSumsAllCounters) {
  McResult a, b;
  a.intervals = 3;
  a.faults_injected = 10;
  a.due_lines = 1;
  a.failure_intervals = 1;
  b.intervals = 4;
  b.faults_injected = 20;
  b.sdc_lines = 2;
  b.failure_intervals = 2;
  a += b;
  EXPECT_EQ(a.intervals, 7u);
  EXPECT_EQ(a.faults_injected, 30u);
  EXPECT_EQ(a.due_lines, 1u);
  EXPECT_EQ(a.sdc_lines, 2u);
  EXPECT_EQ(a.failure_intervals, 3u);
}

// run_sharded with a synthetic workload: shard results are pure functions
// of the shard range, so the merge must be reproducible under any pool.
struct ToyResult {
  std::uint64_t sum = 0;
  std::uint64_t failure_intervals = 0;
  ToyResult& operator+=(const ToyResult& o) {
    sum += o.sum;
    failure_intervals += o.failure_intervals;
    return *this;
  }
};

TEST(ExpEngine, RunShardedMergesInShardOrderWithCutoff) {
  const auto shards = make_shards(100, 10);
  ThreadPool pool(4);
  const auto run = [](const Shard& s, const EarlyStop&) {
    ToyResult r;
    for (std::uint64_t t = s.first; t < s.first + s.count; ++t) r.sum += t;
    r.failure_intervals = 1;  // every shard "fails" once
    return std::optional<ToyResult>(r);
  };
  const auto all = run_sharded<ToyResult>(pool, shards, 0, run);
  EXPECT_EQ(all.sum, 99u * 100u / 2);
  EXPECT_EQ(all.failure_intervals, 10u);

  // target 3 => merge exactly shards 0..2 regardless of execution order.
  const auto cut = run_sharded<ToyResult>(pool, shards, 3, run);
  EXPECT_EQ(cut.failure_intervals, 3u);
  EXPECT_EQ(cut.sum, 29u * 30u / 2);
}

TEST(ExpEngine, LegacyOverloadPropagatesShardExceptions) {
  const auto shards = make_shards(40, 10);
  ThreadPool pool(4);
  // Without a quarantine policy the engine must not swallow the error.
  EXPECT_THROW(run_sharded<ToyResult>(
                   pool, shards, 0,
                   [](const Shard& s, const EarlyStop&) -> std::optional<ToyResult> {
                     if (s.index == 2) throw std::runtime_error("shard blew up");
                     return ToyResult{};
                   }),
               std::runtime_error);
}

TEST(ExpEngine, QuarantineExcludesPersistentlyThrowingShard) {
  const auto shards = make_shards(100, 10);
  ThreadPool pool(4);
  ShardRunReport report;
  RunShardedOptions<ToyResult> opt;
  opt.quarantine = true;
  opt.max_attempts = 3;
  opt.report = &report;
  std::atomic<int> attempts_on_bad{0};
  const auto merged = run_sharded<ToyResult>(
      pool, shards, opt,
      [&](const Shard& s, const EarlyStop&) -> std::optional<ToyResult> {
        if (s.index == 4) {
          attempts_on_bad.fetch_add(1);
          throw std::runtime_error("deterministic failure");
        }
        ToyResult r;
        r.sum = s.count;
        return r;
      });
  EXPECT_EQ(attempts_on_bad.load(), 3);  // retried to max_attempts
  EXPECT_EQ(merged.sum, 90u);            // 9 healthy shards of 10 trials
  EXPECT_TRUE(report.degraded());
  EXPECT_EQ(report.shards_total, 10u);
  EXPECT_EQ(report.shards_quarantined, 1u);
  EXPECT_EQ(report.trials_quarantined, 10u);
  EXPECT_EQ(report.shards_retried, 2u);  // attempts 2 and 3 were retries
  ASSERT_EQ(report.errors.size(), 3u);
  for (const auto& e : report.errors) {
    EXPECT_EQ(e.shard_index, 4u);
    EXPECT_EQ(e.kind, ShardErrorKind::kTrialException);
    EXPECT_NE(e.detail.find("deterministic failure"), std::string::npos);
  }
  EXPECT_FALSE(report.interrupted);
}

TEST(ExpEngine, TransientThrowRecoversViaRetryWithoutDegrading) {
  const auto shards = make_shards(60, 10);
  ThreadPool pool(4);
  ShardRunReport report;
  RunShardedOptions<ToyResult> opt;
  opt.quarantine = true;
  opt.max_attempts = 3;
  opt.report = &report;
  std::atomic<int> failures_left{2};  // shard 1 fails twice, then succeeds
  const auto merged = run_sharded<ToyResult>(
      pool, shards, opt,
      [&](const Shard& s, const EarlyStop&) -> std::optional<ToyResult> {
        if (s.index == 1 && failures_left.fetch_sub(1) > 0) {
          throw std::runtime_error("transient");
        }
        ToyResult r;
        r.sum = s.count;
        return r;
      });
  EXPECT_EQ(merged.sum, 60u);  // nothing lost
  EXPECT_FALSE(report.degraded());
  EXPECT_EQ(report.shards_retried, 2u);
  EXPECT_EQ(report.shards_quarantined, 0u);
  EXPECT_EQ(report.errors.size(), 2u);
}

TEST(ExpEngine, QuarantineReportMetricsSurface) {
  ShardRunReport report;
  report.shards_total = 8;
  report.shards_resumed = 3;
  report.shards_retried = 2;
  report.shards_quarantined = 1;
  report.trials_quarantined = 64;
  const auto reg = report.to_metrics();
  const std::string json = metrics_to_json(reg).str();
  EXPECT_NE(json.find("\"exp.shards_resumed\":3"), std::string::npos);
  EXPECT_NE(json.find("\"exp.shards_retried\":2"), std::string::npos);
  EXPECT_NE(json.find("\"exp.trials_quarantined\":64"), std::string::npos);
}

// ---- result sink error paths -----------------------------------------

class ResultSinkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sudoku_sink_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(ResultSinkTest, EmptyResultSetStillWritesValidArtifact) {
  const ResultSink sink(dir_);
  const JsonObject empty;
  const RunStats stats;  // zero trials, zero wall time
  const auto path = sink.write("empty", empty, empty, stats);
  ASSERT_TRUE(std::filesystem::exists(path));
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"experiment\": \"empty\""), std::string::npos);
  EXPECT_NE(text.find("\"config\": {}"), std::string::npos);
  EXPECT_NE(text.find("\"trials\":0"), std::string::npos);
  // No metrics pointer given: the artifact must not claim a metrics section.
  EXPECT_EQ(text.find("\"metrics\""), std::string::npos);
}

TEST_F(ResultSinkTest, EmptyMetricsRegistryEmbedsEmptyObject) {
  const ResultSink sink(dir_);
  const JsonObject empty;
  const obs::MetricsRegistry metrics;
  const auto root = ResultSink::make_root("e", empty, empty, RunStats{}, &metrics);
  EXPECT_NE(root.str().find("\"metrics\":{}"), std::string::npos);
}

TEST_F(ResultSinkTest, ThrowsWhenOutputDirectoryCannotBeCreated) {
  // A regular file where a path component should be a directory makes
  // create_directories fail on every platform, for every uid (a chmod-based
  // unwritable directory is invisible to root, which CI runs as).
  std::filesystem::create_directories(dir_);
  std::ofstream(dir_ / "blocker") << "not a directory";
  const ResultSink sink(dir_ / "blocker" / "sub");
  const JsonObject empty;
  EXPECT_THROW(sink.write("x", empty, empty, RunStats{}), std::runtime_error);
}

TEST_F(ResultSinkTest, ThrowsWhenArtifactPathIsUnwritable) {
  // <out>/<name>.json already exists as a directory: the stream cannot open.
  std::filesystem::create_directories(dir_ / "clash.json");
  const ResultSink sink(dir_);
  const JsonObject empty;
  EXPECT_THROW(sink.write("clash", empty, empty, RunStats{}), std::runtime_error);
}

// ---- JSON escaping of metric names ------------------------------------

TEST(JsonEscape, ControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain.name"), "plain.name");
  EXPECT_EQ(json_escape("q\"b\\s"), "q\\\"b\\\\s");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("nul\0byte", 8)), "nul\\u0000byte");
}

TEST(JsonEscape, NonAsciiUtf8PassesThroughVerbatim) {
  // JSON strings are UTF-8; multi-byte sequences need no escaping and must
  // not be mangled byte-by-byte.
  EXPECT_EQ(json_escape("grüße.μs"), "grüße.μs");
  EXPECT_EQ(json_escape("度量.计数"), "度量.计数");
}

TEST(MetricsIoEscaping, NonAsciiAndHostileMetricNames) {
  obs::MetricsRegistry reg;
  reg.counter("sudoku.läsfel")->inc(3);
  reg.counter("weird\"name\n")->inc(1);
  const std::string json = metrics_to_json(reg).str();
  EXPECT_NE(json.find("\"sudoku.läsfel\":3"), std::string::npos);
  EXPECT_NE(json.find("\"weird\\\"name\\n\":1"), std::string::npos);
}

}  // namespace
}  // namespace sudoku::exp
