// Covers the golden-artifact comparator (src/exp/artifact_diff.h): exact
// integer semantics (beyond 2^53), float tolerance, glob ignore pruning,
// NaN/Inf (rendered as null by the emitter) handling, and the CLI's
// exit-code contract including the pointed, path-qualified message a
// perturbed golden must produce.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "exp/artifact_diff.h"
#include "exp/json.h"
#include "exp/json_parse.h"

namespace sudoku::exp {
namespace {

JsonValue parse_or_die(const std::string& text) {
  std::string error;
  auto v = json_parse(text, &error);
  EXPECT_TRUE(v.has_value()) << error << " in: " << text;
  return *v;
}

ArtifactDiffResult diff(const std::string& golden, const std::string& actual,
                        const ArtifactDiffOptions& options = {}) {
  return diff_artifacts(parse_or_die(golden), parse_or_die(actual), options);
}

TEST(NumberTextIsInteger, ClassifiesByShape) {
  EXPECT_TRUE(number_text_is_integer("0"));
  EXPECT_TRUE(number_text_is_integer("18446744073709551615"));
  EXPECT_TRUE(number_text_is_integer("-42"));
  EXPECT_FALSE(number_text_is_integer("1.0"));
  EXPECT_FALSE(number_text_is_integer("1e9"));
  EXPECT_FALSE(number_text_is_integer("5.3e-6"));
  EXPECT_FALSE(number_text_is_integer(""));
  EXPECT_FALSE(number_text_is_integer("-"));
}

TEST(PathGlobMatch, LiteralStarAndQuestion) {
  EXPECT_TRUE(path_glob_match("throughput", "throughput"));
  EXPECT_FALSE(path_glob_match("throughput", "throughput2"));
  EXPECT_TRUE(path_glob_match("result.rows[*].seconds", "result.rows[12].seconds"));
  EXPECT_FALSE(path_glob_match("result.rows[*].seconds", "result.rows[12].iters"));
  EXPECT_TRUE(path_glob_match("result.*", "result.anything.nested"));
  EXPECT_TRUE(path_glob_match("a?c", "abc"));
  EXPECT_FALSE(path_glob_match("a?c", "abbc"));
}

TEST(ArtifactDiff, IdenticalDocumentsProduceNoEntries) {
  const std::string doc =
      R"({"experiment":"x","config":{"seed":7},"result":{"rows":[1,2.5,"s",true,null]}})";
  EXPECT_TRUE(diff(doc, doc).identical());
}

TEST(ArtifactDiff, IntegerCountersCompareExactlyBeyond2Pow53) {
  // 2^53 = 9007199254740992; +1 and +2 collapse to the same double, so a
  // double-based diff would call these equal. Raw-text comparison must not.
  const auto d = diff(R"({"n":9007199254740993})", R"({"n":9007199254740994})");
  ASSERT_EQ(d.entries.size(), 1u);
  EXPECT_EQ(d.entries[0].path, "n");
  EXPECT_NE(d.entries[0].message.find("9007199254740993"), std::string::npos);
  // And tolerance never applies to integer-shaped counters.
  ArtifactDiffOptions loose;
  loose.rel_tol = 1.0;
  EXPECT_FALSE(
      diff(R"({"n":9007199254740993})", R"({"n":9007199254740994})", loose)
          .identical());
}

TEST(ArtifactDiff, FloatToleranceAcceptsWithinAndRejectsBeyond) {
  ArtifactDiffOptions options;
  options.rel_tol = 1e-9;
  EXPECT_TRUE(diff(R"({"p":1.0e-6})", R"({"p":1.0000000001e-6})", options)
                  .identical());
  const auto d = diff(R"({"p":1.0e-6})", R"({"p":1.01e-6})", options);
  ASSERT_EQ(d.entries.size(), 1u);
  EXPECT_EQ(d.entries[0].path, "p");
  EXPECT_NE(d.entries[0].message.find("rtol"), std::string::npos);
}

TEST(ArtifactDiff, ZeroToleranceMeansExactTextForFloats) {
  EXPECT_FALSE(diff(R"({"p":0.1})", R"({"p":0.10000000000000002})").identical());
  EXPECT_TRUE(diff(R"({"p":0.1})", R"({"p":0.1})").identical());
}

TEST(ArtifactDiff, MixedIntegerFloatShapesCompareNumerically) {
  // "1" vs "1.0" differ in shape but not value: compared as doubles.
  EXPECT_TRUE(diff(R"({"x":1})", R"({"x":1.0})").identical());
  EXPECT_FALSE(diff(R"({"x":1})", R"({"x":1.5})").identical());
}

TEST(ArtifactDiff, NonFiniteValuesRenderAsNullAndMismatchNumbers) {
  // The emitter renders NaN/Inf as null (json.h); a golden that recorded a
  // finite value must flag an actual that went non-finite, and vice versa.
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  const auto d = diff(R"({"fit":0.092})", R"({"fit":null})");
  ASSERT_EQ(d.entries.size(), 1u);
  EXPECT_EQ(d.entries[0].path, "fit");
  EXPECT_NE(d.entries[0].message.find("null"), std::string::npos);
  // Two non-finite values render identically and compare equal.
  EXPECT_TRUE(diff(R"({"fit":null})", R"({"fit":null})").identical());
}

TEST(ArtifactDiff, MissingAndExtraKeysArePathQualified) {
  const auto d = diff(R"({"result":{"a":1,"b":2}})", R"({"result":{"a":1,"c":3}})");
  ASSERT_EQ(d.entries.size(), 2u);
  EXPECT_EQ(d.entries[0].path, "result.b");
  EXPECT_NE(d.entries[0].message.find("missing in actual"), std::string::npos);
  EXPECT_EQ(d.entries[1].path, "result.c");
  EXPECT_NE(d.entries[1].message.find("present in actual"), std::string::npos);
}

TEST(ArtifactDiff, ArrayLengthAndElementMismatches) {
  const auto d = diff(R"({"rows":[1,2,3]})", R"({"rows":[1,9]})");
  ASSERT_EQ(d.entries.size(), 2u);
  EXPECT_EQ(d.entries[0].path, "rows");
  EXPECT_NE(d.entries[0].message.find("length"), std::string::npos);
  EXPECT_EQ(d.entries[1].path, "rows[1]");
}

TEST(ArtifactDiff, IgnoreListPrunesWholeSubtrees) {
  const std::string golden =
      R"({"throughput":{"wall_seconds":1.5,"trials_per_second":100},"result":{"n":3}})";
  const std::string actual =
      R"({"throughput":{"wall_seconds":9.9,"trials_per_second":7},"result":{"n":3}})";
  EXPECT_FALSE(diff(golden, actual).identical());
  ArtifactDiffOptions options;
  options.ignore = {"throughput"};
  EXPECT_TRUE(diff(golden, actual, options).identical());
  // A real drift outside the ignored section still surfaces.
  const auto d = diff(golden, R"({"throughput":{},"result":{"n":4}})", options);
  ASSERT_EQ(d.entries.size(), 1u);
  EXPECT_EQ(d.entries[0].path, "result.n");
}

TEST(ArtifactDiff, IgnoreGlobHitsOneFieldAcrossAnArray) {
  const std::string golden =
      R"({"result":{"rows":[{"kernel":"a","mb_per_s":10.0},{"kernel":"b","mb_per_s":20.0}]}})";
  const std::string actual =
      R"({"result":{"rows":[{"kernel":"a","mb_per_s":99.0},{"kernel":"b","mb_per_s":1.0}]}})";
  ArtifactDiffOptions options;
  options.ignore = {"result.rows[*].mb_per_s"};
  EXPECT_TRUE(diff(golden, actual, options).identical());
  // The non-ignored sibling keeps protecting the row identity.
  const std::string renamed =
      R"({"result":{"rows":[{"kernel":"a","mb_per_s":10.0},{"kernel":"X","mb_per_s":20.0}]}})";
  const auto d = diff(golden, renamed, options);
  ASSERT_EQ(d.entries.size(), 1u);
  EXPECT_EQ(d.entries[0].path, "result.rows[1].kernel");
}

TEST(ArtifactDiff, IgnoredMissingKeyIsNotReported) {
  ArtifactDiffOptions options;
  options.ignore = {"degraded", "shard_errors"};
  EXPECT_TRUE(
      diff(R"({"n":1,"degraded":true,"shard_errors":[1]})", R"({"n":1})", options)
          .identical());
  EXPECT_TRUE(
      diff(R"({"n":1})", R"({"n":1,"degraded":true,"shard_errors":[1]})", options)
          .identical());
}

TEST(ArtifactDiff, KindChangesAreReported) {
  const auto d = diff(R"({"v":1})", R"({"v":"1"})");
  ASSERT_EQ(d.entries.size(), 1u);
  EXPECT_EQ(d.entries[0].path, "v");
  EXPECT_NE(d.entries[0].message.find("kind"), std::string::npos);
}

TEST(ArtifactDiff, RenderProducesOneLinePerEntry) {
  const auto d = diff(R"({"a":1,"b":2})", R"({"a":9,"b":8})");
  const std::string text = render_artifact_diff(d);
  EXPECT_NE(text.find("a: integer golden 1 != actual 9"), std::string::npos);
  EXPECT_NE(text.find("b: integer golden 2 != actual 8"), std::string::npos);
}

// ---- CLI (artifact_diff_main) ------------------------------------------

class ArtifactDiffCli : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "sudoku_artifact_diff_test";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string write_file(const std::string& name, const std::string& text) {
    const auto path = dir_ / name;
    std::ofstream out(path);
    out << text;
    return path.string();
  }

  static int run_cli(std::vector<std::string> args) {
    std::vector<char*> argv;
    args.insert(args.begin(), "artifact_diff");
    argv.reserve(args.size());
    for (auto& a : args) argv.push_back(a.data());
    return artifact_diff_main(static_cast<int>(argv.size()), argv.data());
  }

  std::filesystem::path dir_;
};

TEST_F(ArtifactDiffCli, IdenticalFilesExitZero) {
  const auto a = write_file("a.json", R"({"result":{"n":3}})");
  const auto b = write_file("b.json", R"({"result":{"n":3}})");
  EXPECT_EQ(run_cli({a, b}), 0);
}

TEST_F(ArtifactDiffCli, UsageAndIoErrorsExitTwo) {
  EXPECT_EQ(run_cli({}), 2);
  EXPECT_EQ(run_cli({"only_one.json"}), 2);
  const auto a = write_file("a.json", R"({"n":1})");
  EXPECT_EQ(run_cli({a, (dir_ / "missing.json").string()}), 2);
  const auto bad = write_file("bad.json", "{not json");
  EXPECT_EQ(run_cli({a, bad}), 2);
  EXPECT_EQ(run_cli({"--rtol=nope", a, a}), 2);
  EXPECT_EQ(run_cli({"--bogus", a, a}), 2);
}

TEST_F(ArtifactDiffCli, RtolAndIgnoreFlagsApply) {
  const auto golden = write_file(
      "golden.json", R"({"throughput":{"wall_seconds":1.0},"result":{"p":1.0e-6}})");
  const auto close_enough = write_file(
      "actual.json",
      R"({"throughput":{"wall_seconds":5.0},"result":{"p":1.0000000001e-6}})");
  EXPECT_EQ(run_cli({golden, close_enough}), 1);
  EXPECT_EQ(run_cli({"--rtol=1e-9", "--ignore=throughput", golden, close_enough}), 0);
}

// A perturbed golden must fail the diff loudly, with the mismatch message
// naming the exact path that drifted — this is the regression signal the
// paper-repro CI job relies on. Death-style so the check covers the whole
// CLI surface (stderr + exit code) exactly as scripts/repro.sh sees it.
TEST_F(ArtifactDiffCli, PerturbedGoldenDiesWithPathQualifiedMessage) {
  const auto golden = write_file(
      "golden.json",
      R"({"experiment":"table3_sdc","result":{"mc_due_lines":24,"sdc_fit":3.1e-11}})");
  const auto perturbed = write_file(
      "perturbed.json",
      R"({"experiment":"table3_sdc","result":{"mc_due_lines":25,"sdc_fit":3.1e-11}})");
  EXPECT_EXIT(
      {
        const int rc = run_cli({golden, perturbed});
        std::exit(rc);
      },
      ::testing::ExitedWithCode(1),
      "result\\.mc_due_lines: integer golden 24 != actual 25");
}

}  // namespace
}  // namespace sudoku::exp
