#include "codes/hamming.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sudoku {
namespace {

BitVec random_codeword(const Hamming& h, Rng& rng) {
  BitVec cw(h.codeword_bits());
  for (std::size_t i = 0; i < h.message_bits(); ++i)
    if (rng.next_bool(0.5)) cw.set(i);
  h.encode(cw);
  return cw;
}

TEST(Hamming, SudokuLayoutUsesTenCheckBits) {
  // 543 message bits (512 data + 31 CRC) need 10 check bits — the "10 bits
  // per line" ECC-1 budget from the paper.
  Hamming h(543);
  EXPECT_EQ(h.check_bits(), 10u);
  EXPECT_EQ(h.codeword_bits(), 553u);
}

TEST(Hamming, EncodedWordHasZeroSyndrome) {
  Rng rng(1);
  Hamming h(543);
  for (int t = 0; t < 50; ++t) {
    const BitVec cw = random_codeword(h, rng);
    EXPECT_EQ(h.syndrome(cw), 0u);
  }
}

TEST(Hamming, CorrectsEverySingleBitError) {
  Rng rng(2);
  Hamming h(543);
  const BitVec cw = random_codeword(h, rng);
  for (std::size_t i = 0; i < h.codeword_bits(); ++i) {
    BitVec bad = cw;
    bad.flip(i);
    EXPECT_EQ(h.decode(bad), Hamming::DecodeStatus::kCorrected) << i;
    EXPECT_EQ(bad, cw) << "bit " << i << " not restored";
  }
}

TEST(Hamming, CleanWordIsLeftAlone) {
  Rng rng(3);
  Hamming h(543);
  BitVec cw = random_codeword(h, rng);
  const BitVec orig = cw;
  EXPECT_EQ(h.decode(cw), Hamming::DecodeStatus::kClean);
  EXPECT_EQ(cw, orig);
}

TEST(Hamming, DoubleErrorsNeverDecodeToClean) {
  // A SEC Hamming code either miscorrects a 2-bit error (flipping a third
  // bit) or reports uncorrectable — it can never claim the word is clean.
  Rng rng(4);
  Hamming h(543);
  const BitVec cw = random_codeword(h, rng);
  for (int t = 0; t < 3000; ++t) {
    const auto i = rng.next_below(h.codeword_bits());
    auto j = rng.next_below(h.codeword_bits());
    while (j == i) j = rng.next_below(h.codeword_bits());
    BitVec bad = cw;
    bad.flip(i);
    bad.flip(j);
    const auto st = h.decode(bad);
    EXPECT_NE(st, Hamming::DecodeStatus::kClean);
    if (st == Hamming::DecodeStatus::kCorrected) {
      // Miscorrection: result differs from the true codeword.
      EXPECT_NE(bad, cw);
      // ...but is itself a consistent codeword (syndrome zero).
      EXPECT_EQ(h.syndrome(bad), 0u);
    }
  }
}

TEST(Hamming, TwoBitErrorFixableWhenOnePositionKnown) {
  // The SDR primitive: flip one of the two faulty bits, then ECC-1 corrects
  // the other. Must succeed for every pair.
  Rng rng(5);
  Hamming h(543);
  const BitVec cw = random_codeword(h, rng);
  for (int t = 0; t < 500; ++t) {
    const auto i = rng.next_below(h.codeword_bits());
    auto j = rng.next_below(h.codeword_bits());
    while (j == i) j = rng.next_below(h.codeword_bits());
    BitVec bad = cw;
    bad.flip(i);
    bad.flip(j);
    bad.flip(i);  // "known position" repaired by SDR
    EXPECT_EQ(h.decode(bad), Hamming::DecodeStatus::kCorrected);
    EXPECT_EQ(bad, cw);
  }
}

TEST(Hamming, SmallCodeExhaustive) {
  // Hamming(4 message bits) = the classic (7,4) code extended with our
  // layout. Exhaustively verify all messages and all single-bit errors.
  Hamming h(4);
  EXPECT_EQ(h.check_bits(), 3u);
  EXPECT_EQ(h.codeword_bits(), 7u);
  for (unsigned msg = 0; msg < 16; ++msg) {
    BitVec cw(7);
    for (int b = 0; b < 4; ++b)
      if ((msg >> b) & 1u) cw.set(b);
    h.encode(cw);
    EXPECT_EQ(h.syndrome(cw), 0u);
    for (int e = 0; e < 7; ++e) {
      BitVec bad = cw;
      bad.flip(e);
      EXPECT_EQ(h.decode(bad), Hamming::DecodeStatus::kCorrected);
      EXPECT_EQ(bad, cw);
    }
  }
}

TEST(Hamming, EncodeIsIdempotent) {
  Rng rng(6);
  Hamming h(543);
  BitVec cw = random_codeword(h, rng);
  const BitVec once = cw;
  h.encode(cw);
  EXPECT_EQ(cw, once);
}

class HammingWidths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HammingWidths, RoundTripAndSingleErrorCorrection) {
  const std::size_t k = GetParam();
  Rng rng(k);
  Hamming h(k);
  EXPECT_GE((std::size_t{1} << h.check_bits()), h.codeword_bits() + 1);
  const BitVec cw = random_codeword(h, rng);
  EXPECT_EQ(h.syndrome(cw), 0u);
  for (int t = 0; t < 64; ++t) {
    const auto i = rng.next_below(h.codeword_bits());
    BitVec bad = cw;
    bad.flip(i);
    EXPECT_EQ(h.decode(bad), Hamming::DecodeStatus::kCorrected);
    EXPECT_EQ(bad, cw);
  }
}

INSTANTIATE_TEST_SUITE_P(VariousMessageSizes, HammingWidths,
                         ::testing::Values(4, 11, 26, 57, 64, 120, 247, 512, 543, 1024));

}  // namespace
}  // namespace sudoku
