#include <gtest/gtest.h>

#include <set>

#include "baselines/cppc_cache.h"
#include "baselines/ecck_cache.h"
#include "baselines/hiecc_cache.h"
#include "baselines/mc_runner.h"
#include "baselines/raid6_cache.h"
#include "baselines/twodp_cache.h"
#include "reliability/analytical.h"

namespace sudoku::baselines {
namespace {

void inject(CacheScheme& s, std::uint64_t unit, int count, Rng& rng) {
  std::set<std::uint32_t> used;
  while (static_cast<int>(used.size()) < count) {
    const auto bit = static_cast<std::uint32_t>(rng.next_below(s.bits_per_unit()));
    if (used.insert(bit).second) s.array().flip(unit, bit);
  }
}

BitVec snapshot(const CacheScheme& s, std::uint64_t unit) {
  return s.array().read_line(unit);
}

// ---------- ECC-k ----------

class EccKParam : public ::testing::TestWithParam<int> {};

TEST_P(EccKParam, CorrectsUpToKFaultsPerLine) {
  const int k = GetParam();
  EccKCache cache(64, k);
  Rng rng(k);
  cache.format_random(rng);
  const BitVec golden = snapshot(cache, 7);
  inject(cache, 7, k, rng);
  const std::uint64_t units[] = {7};
  const auto stats = cache.scrub_units(units);
  EXPECT_EQ(stats.corrected, 1u);
  EXPECT_EQ(stats.due_units, 0u);
  EXPECT_EQ(snapshot(cache, 7), golden);
}

TEST_P(EccKParam, FlagsKPlusTwoFaults) {
  // k+1 faults may miscorrect; k+2 with an even spread is overwhelmingly
  // detected for t >= 2 (a lone Hamming-strength ECC-1 miscorrects multi-
  // bit patterns instead — exactly the weakness SuDoku's CRC-31 exists to
  // catch, covered by NeverReportsCleanBeyondK below).
  const int k = GetParam();
  if (k < 2) GTEST_SKIP() << "ECC-1 has no multi-error detection guarantee";
  EccKCache cache(64, k);
  Rng rng(100 + k);
  cache.format_random(rng);
  int due = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const BitVec golden = snapshot(cache, 3);
    inject(cache, 3, k + 2, rng);
    const std::uint64_t units[] = {3};
    const auto stats = cache.scrub_units(units);
    due += static_cast<int>(stats.due_units);
    cache.restore_unit(3, golden);
  }
  EXPECT_GT(due, 15);  // nearly always detected
}

TEST_P(EccKParam, NeverReportsCleanBeyondK) {
  // Whatever happens beyond k faults — detection or miscorrection — the
  // decoder must never claim the line had no errors.
  const int k = GetParam();
  EccKCache cache(64, k);
  Rng rng(200 + k);
  cache.format_random(rng);
  for (int trial = 0; trial < 20; ++trial) {
    const BitVec golden = snapshot(cache, 9);
    inject(cache, 9, k + 2, rng);
    const std::uint64_t units[] = {9};
    const auto stats = cache.scrub_units(units);
    if (stats.due_units == 0) {
      // Claimed corrected: must differ from golden only if it actually
      // miscorrected, in which case the stored word is some *other*
      // codeword — either way it was not reported clean.
      EXPECT_EQ(stats.corrected, 1u);
    }
    cache.restore_unit(9, golden);
  }
}

INSTANTIATE_TEST_SUITE_P(Tolerances, EccKParam, ::testing::Values(1, 2, 4, 6));

TEST(EccKCache, OverheadMatchesPaper) {
  EccKCache ecc6(16, 6);
  EXPECT_DOUBLE_EQ(ecc6.overhead_bits_per_line(), 60.0);  // §II-D
  EXPECT_EQ(ecc6.bits_per_unit(), 572u);
}

// ---------- CPPC ----------

TEST(CppcCache, RepairsOneMultiBitLineGlobally) {
  CppcCache cache(256);
  Rng rng(1);
  cache.format_random(rng);
  ASSERT_TRUE(cache.parity_consistent());
  const BitVec golden = snapshot(cache, 99);
  inject(cache, 99, 5, rng);
  const std::uint64_t units[] = {99};
  const auto stats = cache.scrub_units(units);
  EXPECT_EQ(stats.due_units, 0u);
  EXPECT_EQ(snapshot(cache, 99), golden);
}

TEST(CppcCache, FailsOnTwoMultiBitLinesAnywhere) {
  // The paper's point: one global parity cannot cover two faulty lines even
  // in completely unrelated locations.
  CppcCache cache(256);
  Rng rng(2);
  cache.format_random(rng);
  inject(cache, 10, 2, rng);
  inject(cache, 200, 2, rng);
  const std::uint64_t units[] = {10, 200};
  const auto stats = cache.scrub_units(units);
  EXPECT_EQ(stats.due_units, 2u);
}

TEST(CppcCache, SingleBitFaultsHandledPerLine) {
  CppcCache cache(128);
  Rng rng(3);
  cache.format_random(rng);
  inject(cache, 5, 1, rng);
  inject(cache, 50, 1, rng);
  const std::uint64_t units[] = {5, 50};
  const auto stats = cache.scrub_units(units);
  EXPECT_EQ(stats.corrected, 2u);
  EXPECT_EQ(stats.due_units, 0u);
  EXPECT_TRUE(cache.parity_consistent());
}

// ---------- RAID-6 ----------

TEST(Raid6Cache, RepairsTwoMultiBitLinesInGroup) {
  Raid6Cache cache(256, 32);
  Rng rng(4);
  cache.format_random(rng);
  const BitVec g1 = snapshot(cache, 3);
  const BitVec g2 = snapshot(cache, 17);  // same group of 32
  inject(cache, 3, 3, rng);
  inject(cache, 17, 4, rng);
  const std::uint64_t units[] = {3, 17};
  const auto stats = cache.scrub_units(units);
  EXPECT_EQ(stats.due_units, 0u);
  EXPECT_EQ(snapshot(cache, 3), g1);
  EXPECT_EQ(snapshot(cache, 17), g2);
}

TEST(Raid6Cache, FailsOnThreeMultiBitLinesInGroup) {
  Raid6Cache cache(256, 32);
  Rng rng(5);
  cache.format_random(rng);
  inject(cache, 1, 2, rng);
  inject(cache, 9, 2, rng);
  inject(cache, 25, 2, rng);
  const std::uint64_t units[] = {1, 9, 25};
  const auto stats = cache.scrub_units(units);
  EXPECT_EQ(stats.due_units, 3u);
}

TEST(Raid6Cache, RdpFlavorMatchesPqBehaviour) {
  // The RDP construction (the paper's "diagonal + row parity" wording)
  // must repair and fail on exactly the same patterns as P+Q.
  for (const auto flavor : {Raid6Flavor::kPQ, Raid6Flavor::kRdp}) {
    Raid6Cache cache(256, 32, flavor);
    Rng rng(14);
    cache.format_random(rng);
    const BitVec g1 = snapshot(cache, 3);
    const BitVec g2 = snapshot(cache, 17);
    inject(cache, 3, 3, rng);
    inject(cache, 17, 4, rng);
    const std::uint64_t two[] = {3, 17};
    EXPECT_EQ(cache.scrub_units(two).due_units, 0u) << cache.name();
    EXPECT_EQ(snapshot(cache, 3), g1) << cache.name();
    EXPECT_EQ(snapshot(cache, 17), g2) << cache.name();
    // Third multi-bit line in the same group defeats both flavors.
    inject(cache, 1, 2, rng);
    inject(cache, 9, 2, rng);
    inject(cache, 25, 2, rng);
    const std::uint64_t three[] = {1, 9, 25};
    EXPECT_EQ(cache.scrub_units(three).due_units, 3u) << cache.name();
  }
}

TEST(Raid6Cache, MultiBitLinesInDifferentGroupsAreIndependent) {
  Raid6Cache cache(256, 32);
  Rng rng(6);
  cache.format_random(rng);
  const BitVec g1 = snapshot(cache, 3);
  const BitVec g2 = snapshot(cache, 100);
  inject(cache, 3, 3, rng);
  inject(cache, 100, 3, rng);
  const std::uint64_t units[] = {3, 100};
  const auto stats = cache.scrub_units(units);
  EXPECT_EQ(stats.due_units, 0u);
  EXPECT_EQ(snapshot(cache, 3), g1);
  EXPECT_EQ(snapshot(cache, 100), g2);
}

// ---------- 2DP ----------

TEST(TwoDpCache, ResurrectsLikeSudokuY) {
  TwoDpCache cache(1024, 32);
  Rng rng(7);
  cache.format_random(rng);
  const BitVec g1 = snapshot(cache, 4);
  const BitVec g2 = snapshot(cache, 20);
  inject(cache, 4, 2, rng);
  inject(cache, 20, 2, rng);
  const std::uint64_t units[] = {4, 20};
  const auto stats = cache.scrub_units(units);
  EXPECT_EQ(stats.due_units, 0u);
  EXPECT_EQ(snapshot(cache, 4), g1);
  EXPECT_EQ(snapshot(cache, 20), g2);
}

TEST(TwoDpCache, NoSecondHashMeansThreeFaultPairsFail) {
  // Where SuDoku-Z recovers (Figure 6), 2DP cannot: same lines, one hash.
  TwoDpCache cache(1024, 32);
  Rng rng(8);
  cache.format_random(rng);
  inject(cache, 4, 3, rng);
  inject(cache, 20, 3, rng);
  const std::uint64_t units[] = {4, 20};
  const auto stats = cache.scrub_units(units);
  EXPECT_EQ(stats.due_units, 2u);
}

// ---------- Hi-ECC ----------

TEST(HiEccCache, CorrectsSixFaultsPerRegion) {
  HiEccCache cache(256);  // 16 regions
  Rng rng(9);
  cache.format_random(rng);
  const BitVec golden = snapshot(cache, 5);
  inject(cache, 5, 6, rng);
  const std::uint64_t units[] = {5};
  const auto stats = cache.scrub_units(units);
  EXPECT_EQ(stats.corrected, 1u);
  EXPECT_EQ(snapshot(cache, 5), golden);
}

TEST(HiEccCache, SevenFaultsInRegionDetected) {
  HiEccCache cache(256);
  Rng rng(10);
  cache.format_random(rng);
  inject(cache, 5, 8, rng);
  const std::uint64_t units[] = {5};
  const auto stats = cache.scrub_units(units);
  EXPECT_EQ(stats.due_units, 1u);
}

TEST(HiEccCache, OverheadFarBelowEcc6PerLine) {
  HiEccCache cache(256);
  EXPECT_LT(cache.overhead_bits_per_line(), 6.0);  // ~5.25 bits per 64 B
}

// ---------- generic MC runner ----------

TEST(BaselineMc, Ecc2MatchesAnalyticalAtAcceleratedBer) {
  EccKCache cache(1u << 12, 2);
  BaselineMcConfig cfg;
  cfg.ber = 3e-4;
  cfg.max_intervals = 2000;
  cfg.seed = 11;
  const auto mc = run_baseline_mc(cache, cfg);
  reliability::CacheParams ap;
  ap.num_lines = 1u << 12;
  ap.ber = cfg.ber;
  const auto an = reliability::ecc_k(ap, 2);
  ASSERT_GT(mc.failure_intervals, 10u);
  const double ratio = mc.p_failure_per_interval() / an.p_interval();
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 2.5);
}

TEST(BaselineMc, CppcFailsConstantlyAtHighBer) {
  CppcCache cache(1u << 12);
  BaselineMcConfig cfg;
  cfg.ber = 3e-4;
  cfg.max_intervals = 100;
  const auto mc = run_baseline_mc(cache, cfg);
  EXPECT_GT(mc.p_failure_per_interval(), 0.3);
}

TEST(BaselineMc, OrderingCppcWorstRaid6Better) {
  // At this BER the whole-cache pairing probability is ~19 per interval for
  // CPPC (always failing) while RAID-6's per-group triple probability is
  // only a few percent.
  BaselineMcConfig cfg;
  cfg.ber = 1e-4;
  cfg.max_intervals = 200;
  CppcCache cppc(1u << 12);
  Raid6Cache raid6(1u << 12, 128);
  const auto r_cppc = run_baseline_mc(cppc, cfg);
  const auto r_raid6 = run_baseline_mc(raid6, cfg);
  EXPECT_GT(r_cppc.failure_intervals, r_raid6.failure_intervals);
}

TEST(BaselineMc, NoSdcInParityBasedSchemes) {
  BaselineMcConfig cfg;
  cfg.ber = 2e-4;
  cfg.max_intervals = 100;
  Raid6Cache raid6(1u << 12, 128);
  const auto r = run_baseline_mc(raid6, cfg);
  EXPECT_EQ(r.sdc_units, 0u);
  TwoDpCache twodp(1u << 12, 128);
  const auto r2 = run_baseline_mc(twodp, cfg);
  EXPECT_EQ(r2.sdc_units, 0u);
}

}  // namespace
}  // namespace sudoku::baselines
