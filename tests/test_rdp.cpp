#include "raid/rdp.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sudoku {
namespace {

std::vector<BitVec> random_group(std::uint32_t n, std::uint32_t bits, Rng& rng) {
  std::vector<BitVec> lines(n, BitVec(bits));
  for (auto& l : lines) {
    for (std::uint32_t i = 0; i < bits; ++i)
      if (rng.next_bool(0.5)) l.set(i);
  }
  return lines;
}

TEST(Rdp, PicksAPrimeCoveringTheGroup) {
  RowDiagonalParity rdp(512, 553);
  EXPECT_GE(rdp.prime(), 513u);
  // 521 is the smallest prime >= 513.
  EXPECT_EQ(rdp.prime(), 521u);
  EXPECT_EQ(rdp.stripes(), 2u);  // 553 bits over 520-row stripes
}

TEST(Rdp, RowParityIsPlainXor) {
  Rng rng(1);
  RowDiagonalParity rdp(8, 100);
  auto lines = random_group(8, 100, rng);
  BitVec rp, dp;
  rdp.compute(lines, rp, dp);
  BitVec manual(100);
  for (const auto& l : lines) manual ^= l;
  EXPECT_EQ(rp, manual);
}

TEST(Rdp, ReconstructOne) {
  Rng rng(2);
  RowDiagonalParity rdp(16, 553);
  auto lines = random_group(16, 553, rng);
  BitVec rp, dp;
  rdp.compute(lines, rp, dp);
  for (const std::uint32_t victim : {0u, 7u, 15u}) {
    EXPECT_EQ(rdp.reconstruct_one(lines, victim, rp), lines[victim]);
  }
}

TEST(Rdp, ReconstructTwoAllPairsSmallGroup) {
  Rng rng(3);
  RowDiagonalParity rdp(6, 64);
  auto lines = random_group(6, 64, rng);
  BitVec rp, dp;
  rdp.compute(lines, rp, dp);
  for (std::uint32_t a = 0; a < 6; ++a) {
    for (std::uint32_t b = a + 1; b < 6; ++b) {
      const auto [da, db] = rdp.reconstruct_two(lines, a, b, rp, dp);
      ASSERT_EQ(da, lines[a]) << a << "," << b;
      ASSERT_EQ(db, lines[b]) << a << "," << b;
    }
  }
}

TEST(Rdp, ReconstructTwoFullSizeGroup) {
  // The paper's geometry: 512-line groups, 553-bit codewords.
  Rng rng(4);
  RowDiagonalParity rdp(512, 553);
  auto lines = random_group(512, 553, rng);
  BitVec rp, dp;
  rdp.compute(lines, rp, dp);
  const auto [da, db] = rdp.reconstruct_two(lines, 3, 400, rp, dp);
  EXPECT_EQ(da, lines[3]);
  EXPECT_EQ(db, lines[400]);
}

TEST(Rdp, AdjacentAndExtremePairs) {
  Rng rng(5);
  RowDiagonalParity rdp(32, 553);
  auto lines = random_group(32, 553, rng);
  BitVec rp, dp;
  rdp.compute(lines, rp, dp);
  for (const auto& [a, b] : std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {0, 1}, {0, 31}, {30, 31}, {15, 16}}) {
    const auto [da, db] = rdp.reconstruct_two(lines, a, b, rp, dp);
    ASSERT_EQ(da, lines[a]) << a << "," << b;
    ASSERT_EQ(db, lines[b]) << a << "," << b;
  }
}

TEST(Rdp, ZeroGroupHasZeroParities) {
  RowDiagonalParity rdp(8, 64);
  std::vector<BitVec> lines(8, BitVec(64));
  BitVec rp, dp;
  rdp.compute(lines, rp, dp);
  EXPECT_TRUE(rp.none());
  EXPECT_TRUE(dp.none());
}

TEST(Rdp, DiagonalParityDetectsCorruption) {
  Rng rng(6);
  RowDiagonalParity rdp(8, 128);
  auto lines = random_group(8, 128, rng);
  BitVec rp, dp;
  rdp.compute(lines, rp, dp);
  lines[3].flip(64);
  BitVec rp2, dp2;
  rdp.compute(lines, rp2, dp2);
  EXPECT_NE(rp, rp2);
  EXPECT_NE(dp, dp2);
}

TEST(Rdp, EquivalentStrengthToPqRaid6) {
  // RDP and P+Q both correct exactly two known-position erasures: on the
  // same data, both must round-trip every sampled pair. (This is why the
  // analytical RAID-6 model covers both constructions.)
  Rng rng(7);
  RowDiagonalParity rdp(24, 553);
  auto lines = random_group(24, 553, rng);
  BitVec rp, dp;
  rdp.compute(lines, rp, dp);
  for (int t = 0; t < 20; ++t) {
    const auto a = static_cast<std::uint32_t>(rng.next_below(24));
    auto b = a;
    while (b == a) b = static_cast<std::uint32_t>(rng.next_below(24));
    const auto lo = std::min(a, b), hi = std::max(a, b);
    const auto [da, db] = rdp.reconstruct_two(lines, lo, hi, rp, dp);
    ASSERT_EQ(da, lines[lo]);
    ASSERT_EQ(db, lines[hi]);
  }
}

}  // namespace
}  // namespace sudoku
