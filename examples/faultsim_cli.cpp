// FaultSim-style command-line reliability simulator (the paper's cited
// methodology [50][52]): pick a scheme, an error rate, and a cache
// geometry; get a FIT/MTTF estimate from functional Monte-Carlo fault
// injection, with the analytical prediction alongside.
//
// Usage:
//   faultsim_cli --scheme=<x|y|z|ecc1..ecc6|cppc|raid6|2dp|hiecc>
//                [--ber=1e-4] [--lines=16384] [--group=128]
//                [--intervals=1000] [--seed=1] [--inner-t=1]
#include <cstdio>
#include <cstring>
#include <string>

#include "baselines/cppc_cache.h"
#include "baselines/ecck_cache.h"
#include "baselines/hiecc_cache.h"
#include "baselines/mc_runner.h"
#include "baselines/raid6_cache.h"
#include "baselines/twodp_cache.h"
#include "reliability/analytical.h"
#include "reliability/montecarlo.h"

using namespace sudoku;
using namespace sudoku::reliability;

namespace {

struct Args {
  std::string scheme = "z";
  double ber = 1e-4;
  std::uint64_t lines = 1u << 14;
  std::uint32_t group = 128;
  std::uint64_t intervals = 1000;
  std::uint64_t seed = 1;
  int inner_t = 1;
};

bool parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto eq = a.find('=');
    if (a.rfind("--", 0) != 0 || eq == std::string::npos) {
      std::fprintf(stderr, "bad argument: %s\n", a.c_str());
      return false;
    }
    const std::string key = a.substr(2, eq - 2);
    const std::string val = a.substr(eq + 1);
    if (key == "scheme") args.scheme = val;
    else if (key == "ber") args.ber = std::stod(val);
    else if (key == "lines") args.lines = std::stoull(val);
    else if (key == "group") args.group = static_cast<std::uint32_t>(std::stoul(val));
    else if (key == "intervals") args.intervals = std::stoull(val);
    else if (key == "seed") args.seed = std::stoull(val);
    else if (key == "inner-t") args.inner_t = std::stoi(val);
    else {
      std::fprintf(stderr, "unknown option: --%s\n", key.c_str());
      return false;
    }
  }
  return true;
}

void report(const std::string& scheme, double p_fail, std::uint64_t events,
            std::uint64_t intervals, double analytical_p) {
  std::printf("\n  scheme            : %s\n", scheme.c_str());
  std::printf("  failing intervals : %llu / %llu\n",
              static_cast<unsigned long long>(events),
              static_cast<unsigned long long>(intervals));
  std::printf("  MC P[fail]/20ms   : %.4g\n", p_fail);
  std::printf("  analytical        : %.4g\n", analytical_p);
  if (p_fail > 0) {
    std::printf("  MC FIT            : %.4g\n", p_fail * 1.8e14);
    std::printf("  MC MTTF           : %.4g s\n", 0.02 / p_fail);
  } else {
    std::printf("  MC FIT            : 0 observed (raise --ber or --intervals)\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) return 1;

  CacheParams ap;
  ap.num_lines = args.lines;
  ap.group_size = args.group;
  ap.ber = args.ber;
  ap.inner_ecc_t = args.inner_t;

  std::printf("faultsim: %llu lines, group %u, BER %.3g per 20ms interval, %llu intervals",
              static_cast<unsigned long long>(args.lines), args.group, args.ber,
              static_cast<unsigned long long>(args.intervals));

  if (args.scheme == "x" || args.scheme == "y" || args.scheme == "z") {
    McConfig cfg;
    cfg.cache = ap;
    cfg.level = args.scheme == "x"   ? SudokuLevel::kX
                : args.scheme == "y" ? SudokuLevel::kY
                                     : SudokuLevel::kZ;
    cfg.max_intervals = args.intervals;
    cfg.seed = args.seed;
    const auto r = run_montecarlo(cfg);
    FitResult an{};
    if (args.scheme == "x") an = sudoku_x_due(ap);
    if (args.scheme == "y") an = sudoku_y_due(ap);
    if (args.scheme == "z") an = sudoku_z_due(ap);
    report(std::string("SuDoku-") + static_cast<char>(std::toupper(args.scheme[0])),
           r.p_failure_per_interval(), r.failure_intervals, r.intervals,
           an.p_interval());
    std::printf("  repairs           : ecc1=%llu raid4=%llu sdr=%llu hash2=%llu sdc=%llu\n",
                static_cast<unsigned long long>(r.ecc1_corrections),
                static_cast<unsigned long long>(r.raid4_repairs),
                static_cast<unsigned long long>(r.sdr_repairs),
                static_cast<unsigned long long>(r.hash2_invocations),
                static_cast<unsigned long long>(r.sdc_lines));
    return 0;
  }

  baselines::BaselineMcConfig mcfg;
  mcfg.ber = args.ber;
  mcfg.max_intervals = args.intervals;
  mcfg.seed = args.seed;

  if (args.scheme.rfind("ecc", 0) == 0) {
    const int k = std::stoi(args.scheme.substr(3));
    baselines::EccKCache cache(args.lines, k);
    const auto r = run_baseline_mc(cache, mcfg);
    report(cache.name(), r.p_failure_per_interval(), r.failure_intervals, r.intervals,
           ecc_k(ap, k).p_interval());
  } else if (args.scheme == "cppc") {
    baselines::CppcCache cache(args.lines);
    const auto r = run_baseline_mc(cache, mcfg);
    report(cache.name(), r.p_failure_per_interval(), r.failure_intervals, r.intervals,
           cppc(ap).p_interval());
  } else if (args.scheme == "raid6") {
    baselines::Raid6Cache cache(args.lines, args.group);
    const auto r = run_baseline_mc(cache, mcfg);
    report(cache.name(), r.p_failure_per_interval(), r.failure_intervals, r.intervals,
           raid6(ap).p_interval());
  } else if (args.scheme == "2dp") {
    baselines::TwoDpCache cache(args.lines, args.group);
    const auto r = run_baseline_mc(cache, mcfg);
    report(cache.name(), r.p_failure_per_interval(), r.failure_intervals, r.intervals,
           twodp(ap).p_interval());
  } else if (args.scheme == "hiecc") {
    baselines::HiEccCache cache(args.lines);
    const auto r = run_baseline_mc(cache, mcfg);
    report(cache.name(), r.p_failure_per_interval(), r.failure_intervals, r.intervals,
           hi_ecc(ap).p_interval());
  } else {
    std::fprintf(stderr, "\nunknown scheme: %s\n", args.scheme.c_str());
    return 1;
  }
  return 0;
}
