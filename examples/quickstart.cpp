// Quickstart: the SuDoku public API in ~60 lines.
//
//   1. Build a SuDoku-Z controller over a small STTRAM array.
//   2. Write data through the host interface (PLTs update automatically).
//   3. Flip bits behind the controller's back (thermal faults).
//   4. Watch ECC-1, RAID-4, SDR and the skewed hash repair them.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "common/rng.h"
#include "sudoku/controller.h"

using namespace sudoku;

namespace {

const char* outcome_name(SudokuController::ReadOutcome o) {
  switch (o) {
    case SudokuController::ReadOutcome::kClean: return "clean";
    case SudokuController::ReadOutcome::kCorrected: return "ECC-1 corrected";
    case SudokuController::ReadOutcome::kRepaired: return "RAID/SDR repaired";
    case SudokuController::ReadOutcome::kDue: return "UNCORRECTABLE";
  }
  return "?";
}

}  // namespace

int main() {
  // A 1024-line cache with 32-line RAID-Groups, full SuDoku-Z protection.
  SudokuConfig config;
  config.geo.num_lines = 1024;
  config.geo.group_size = 32;
  config.level = SudokuLevel::kZ;
  SudokuController cache(config);

  Rng rng(2024);
  cache.format_random(rng);
  std::printf("formatted %llu lines (%s), PLT storage: %llu bits\n",
              static_cast<unsigned long long>(config.geo.num_lines),
              to_string(config.level),
              static_cast<unsigned long long>(cache.plt_storage_bits()));

  // Host write + read round trip.
  BitVec payload(LineCodec::kDataBits);
  payload.set(0);
  payload.set(511);
  cache.write_data(42, payload);
  auto r = cache.read_data(42);
  std::printf("write/read line 42: %s (data ok: %s)\n", outcome_name(r.outcome),
              r.data == payload ? "yes" : "NO");

  // One thermal flip: the per-line ECC-1 fast path handles it.
  cache.array().flip(42, 300);
  r = cache.read_data(42);
  std::printf("1-bit fault:  %s (data ok: %s)\n", outcome_name(r.outcome),
              r.data == payload ? "yes" : "NO");

  // A 5-bit burst: CRC-31 detects, RAID-4 rebuilds from the parity group.
  for (const std::uint32_t b : {7u, 99u, 250u, 401u, 533u}) cache.array().flip(42, b);
  r = cache.read_data(42);
  std::printf("5-bit fault:  %s (data ok: %s)\n", outcome_name(r.outcome),
              r.data == payload ? "yes" : "NO");

  // The hard case: two 2-fault lines in the same RAID-Group. Plain RAID-4
  // (SuDoku-X) would give up; Sequential Data Resurrection fixes it.
  cache.array().flip(10, 100);
  cache.array().flip(10, 200);
  cache.array().flip(20, 300);
  cache.array().flip(20, 400);
  const std::uint64_t faulty[] = {10, 20};
  const auto stats = cache.scrub_lines(faulty);
  std::printf("2x2-bit scrub: sdr_repairs=%llu raid4=%llu due=%llu\n",
              static_cast<unsigned long long>(stats.sdr_repairs),
              static_cast<unsigned long long>(stats.raid4_repairs),
              static_cast<unsigned long long>(stats.due_lines));

  std::printf("parities consistent after all repairs: %s\n",
              cache.parities_consistent() ? "yes" : "NO");
  return 0;
}
