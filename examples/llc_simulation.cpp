// LLC timing-simulation walkthrough: run the Table VI system on a chosen
// multi-programmed workload, with and without SuDoku-Z, and print the
// performance/energy story of §VII-C/D for that workload.
//
// Usage: llc_simulation [bench1,bench2,...] [instructions_per_core]
//        llc_simulation --list            (show the benchmark roster)
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "energy/energy_model.h"
#include "sim/timing_sim.h"

using namespace sudoku;
using namespace sudoku::sim;

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--list") {
    std::printf("%-16s %-8s %8s %8s %12s\n", "name", "suite", "APKI", "wr%", "footprint");
    for (const auto& b : benchmark_roster()) {
      std::printf("%-16s %-8s %8.1f %7.0f%% %9.0f MB\n", b.name.c_str(),
                  b.suite.c_str(), b.llc_apki, b.write_frac * 100,
                  static_cast<double>(b.footprint_lines) * 64 / (1 << 20));
    }
    return 0;
  }

  std::vector<std::string> benchmarks = {"mcf", "gcc", "lbm", "omnetpp",
                                         "comm1", "canneal", "x264", "milc"};
  if (argc > 1) {
    benchmarks.clear();
    std::stringstream ss(argv[1]);
    std::string item;
    while (std::getline(ss, item, ',')) benchmarks.push_back(item);
  }
  SimConfig cfg;
  if (argc > 2) cfg.instructions_per_core = std::stoull(argv[2]);

  std::printf("workload:");
  for (const auto& b : benchmarks) std::printf(" %s", b.c_str());
  std::printf("\nsystem: %u cores @%.1fGHz, %llu MB LLC, %llu instr/core\n\n",
              cfg.num_cores, cfg.core_ghz,
              static_cast<unsigned long long>(cfg.llc.size_bytes >> 20),
              static_cast<unsigned long long>(cfg.instructions_per_core));

  SimConfig ideal = cfg;
  ideal.sudoku.enabled = false;
  const auto r_sudoku = TimingSimulator(cfg).run(benchmarks);
  const auto r_ideal = TimingSimulator(ideal).run(benchmarks);

  std::printf("%-14s %12s %12s\n", "", "Ideal", "SuDoku-Z");
  std::printf("%-14s %10.3f ms %10.3f ms\n", "exec time", r_ideal.total_time_ns / 1e6,
              r_sudoku.total_time_ns / 1e6);
  std::printf("%-14s %12.3f %12.3f\n", "LLC hit rate", r_ideal.llc.hit_rate(),
              r_sudoku.llc.hit_rate());
  std::printf("%-14s %12llu %12llu\n", "DRAM accesses",
              static_cast<unsigned long long>(r_ideal.dram_accesses),
              static_cast<unsigned long long>(r_sudoku.dram_accesses));
  std::printf("%-14s %12llu %12llu\n", "PLT writes", 0ull,
              static_cast<unsigned long long>(r_sudoku.plt_writes));
  std::printf("%-14s %12s %12llu\n", "scrub reads", "-",
              static_cast<unsigned long long>(r_sudoku.scrub_reads));

  energy::EnergyParams params;
  const std::uint64_t cells = cfg.llc.num_lines() * 553;
  const auto e_sudoku = energy::compute_energy(r_sudoku, params, cells, 2ull * 2048 * 553);
  const auto e_ideal = energy::compute_energy(r_ideal, params, cells, 0);
  std::printf("%-14s %10.3f J %10.3f J\n", "system energy", e_ideal.total_j(),
              e_sudoku.total_j());

  const double slowdown = (r_sudoku.total_time_ns / r_ideal.total_time_ns - 1) * 100;
  const double edp_over = (energy::edp(e_sudoku, r_sudoku.total_time_ns) /
                               energy::edp(e_ideal, r_ideal.total_time_ns) -
                           1) * 100;
  std::printf("\nSuDoku-Z overhead: %.3f%% time, %.3f%% EDP  (paper: ~0.1%%, <=0.4%%)\n",
              slowdown, edp_over);

  std::printf("\nper-core IPC (SuDoku-Z):\n");
  for (const auto& core : r_sudoku.cores) {
    std::printf("  %-16s ipc %.3f  (%llu LLC accesses)\n", core.benchmark.c_str(),
                core.ipc, static_cast<unsigned long long>(core.llc_accesses));
  }
  return 0;
}
