// Reliability explorer: a small CLI over the analytical models. Give it a
// cache size, scrub interval and thermal stability, and it prints the FIT
// rate and MTTF of every scheme the paper evaluates — the tool you'd use
// to size a real deployment ("what Delta can I scale to before my LLC
// needs more than ECC-1 + SuDoku?").
//
// Usage: reliability_explorer [delta=35] [sigma=0.10] [cache_mb=64]
//                             [scrub_ms=20] [group=512]
#include <cstdio>
#include <string>

#include "reliability/analytical.h"
#include "sttram/device_model.h"

using namespace sudoku;
using namespace sudoku::reliability;

int main(int argc, char** argv) {
  ThermalParams tp;
  double cache_mb = 64.0;
  double scrub_ms = 20.0;
  std::uint32_t group = 512;
  if (argc > 1) tp.delta_mean = std::stod(argv[1]);
  if (argc > 2) tp.sigma_frac = std::stod(argv[2]);
  if (argc > 3) cache_mb = std::stod(argv[3]);
  if (argc > 4) scrub_ms = std::stod(argv[4]);
  if (argc > 5) group = static_cast<std::uint32_t>(std::stoul(argv[5]));

  CacheParams c;
  c.num_lines = static_cast<std::uint64_t>(cache_mb * 1024 * 1024 / 64);
  c.scrub_interval_s = scrub_ms / 1000.0;
  c.group_size = group;
  c.ber = effective_ber(tp, c.scrub_interval_s);

  std::printf("device:  Delta=%.1f sigma=%.0f%%  -> BER %.3e per %.0f ms scrub\n",
              tp.delta_mean, tp.sigma_frac * 100, c.ber, scrub_ms);
  std::printf("cache :  %.0f MB (%llu lines), RAID-Group %u\n\n", cache_mb,
              static_cast<unsigned long long>(c.num_lines), group);

  auto row = [&](const char* name, const FitResult& r) {
    const double mttf_h = r.mttf_hours();
    std::printf("  %-26s FIT %-12.4g MTTF ", name, r.fit());
    if (mttf_h < 1.0 / 60) {
      std::printf("%8.2f s\n", r.mttf_seconds());
    } else if (mttf_h < 24 * 365) {
      std::printf("%8.2f h\n", mttf_h);
    } else {
      std::printf("%8.3g years\n", mttf_h / 8760.0);
    }
  };

  for (int k = 1; k <= 6; ++k) {
    row(("ECC-" + std::to_string(k) + " per line").c_str(), ecc_k(c, k));
  }
  row("SuDoku-X", sudoku_x_due(c));
  row("SuDoku-Y (mechanistic)", sudoku_y_due(c));
  row("SuDoku-Y (strict)", sudoku_y_due(c, SdrModel::kStrict));
  row("SuDoku-Z (mechanistic)", sudoku_z_due(c));
  row("SuDoku-Z (strict)", sudoku_z_due(c, SdrModel::kStrict));
  row("CPPC + CRC-31", cppc(c));
  row("RAID-6 + CRC-31", raid6(c));
  row("2DP + ECC-1 + CRC-31", twodp(c));
  row("Hi-ECC (ECC-6/1KB)", hi_ecc(c));

  const auto sdc = sudoku_sdc(c);
  std::printf("\n  SuDoku SDC FIT: %.3g (mechanistic), %.3g (paper-style)\n",
              sdc.sdc_fit, sdc.sdc_fit_paper_style);
  std::printf("  1-FIT target met by SuDoku-Z: %s\n",
              sudoku_z_due(c, SdrModel::kStrict).fit() < 1.0 ? "YES" : "NO");
  return 0;
}
