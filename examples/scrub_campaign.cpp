// Scrub campaign: run a fault-injection soak against each SuDoku level and
// print a per-interval event log plus a final reliability scorecard — a
// miniature of the paper's §VII reliability evaluation that finishes in
// seconds.
//
// Usage: scrub_campaign [ber] [intervals] [level: x|y|z]
#include <cstdio>
#include <cstring>
#include <string>

#include "reliability/montecarlo.h"

using namespace sudoku;
using namespace sudoku::reliability;

int main(int argc, char** argv) {
  double ber = 5e-4;
  std::uint64_t intervals = 500;
  std::string level_arg = "all";
  if (argc > 1) ber = std::stod(argv[1]);
  if (argc > 2) intervals = std::stoull(argv[2]);
  if (argc > 3) level_arg = argv[3];

  std::printf("scrub campaign: 1MB cache, 128-line RAID-Groups, BER %.2e per 20ms,\n"
              "%llu scrub intervals (%.1f simulated seconds)\n\n",
              ber, static_cast<unsigned long long>(intervals), intervals * 0.02);

  for (const auto level : {SudokuLevel::kX, SudokuLevel::kY, SudokuLevel::kZ}) {
    if (level_arg != "all") {
      const char want = static_cast<char>(std::tolower(level_arg[0]));
      if ((level == SudokuLevel::kX && want != 'x') ||
          (level == SudokuLevel::kY && want != 'y') ||
          (level == SudokuLevel::kZ && want != 'z')) {
        continue;
      }
    }
    McConfig cfg;
    cfg.cache.num_lines = 1u << 14;
    cfg.cache.group_size = 128;
    cfg.cache.ber = ber;
    cfg.level = level;
    cfg.max_intervals = intervals;
    cfg.seed = 11;
    const auto r = run_montecarlo(cfg);

    std::printf("--- %s ---\n", to_string(level));
    std::printf("  faults injected      : %llu\n",
                static_cast<unsigned long long>(r.faults_injected));
    std::printf("  ECC-1 corrections    : %llu\n",
                static_cast<unsigned long long>(r.ecc1_corrections));
    std::printf("  RAID-4 rebuilds      : %llu\n",
                static_cast<unsigned long long>(r.raid4_repairs));
    std::printf("  SDR resurrections    : %llu\n",
                static_cast<unsigned long long>(r.sdr_repairs));
    std::printf("  Hash-2 fallbacks     : %llu\n",
                static_cast<unsigned long long>(r.hash2_invocations));
    std::printf("  DUE lines (data loss): %llu\n",
                static_cast<unsigned long long>(r.due_lines));
    std::printf("  silent corruptions   : %llu\n",
                static_cast<unsigned long long>(r.sdc_lines));
    std::printf("  failing intervals    : %llu / %llu  (MTTF ~ %.1f s at this BER)\n\n",
                static_cast<unsigned long long>(r.failure_intervals),
                static_cast<unsigned long long>(r.intervals),
                r.mttf_seconds(0.02));
  }
  return 0;
}
