#!/usr/bin/env bash
# Crash-resume end-to-end check (docs/robustness.md), run in CI against the
# Release build:
#
#   1. uninterrupted reference run of bench_montecarlo_validation
#   2. checkpointed run, SIGTERM'd mid-flight -> must exit 75 ("interrupted,
#      resumable") with finished shards persisted (or 0 if it won the race)
#   3. --resume run -> must exit 0 and replay the checkpointed shards
#   4. the resumed artifact must equal the reference byte-for-byte outside
#      the wall-clock "throughput" section
#
# Usage: scripts/ci_crash_resume.sh <path-to-bench_montecarlo_validation>
set -euo pipefail

BENCH=${1:?usage: $0 <path-to-bench_montecarlo_validation>}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

echo "== reference run (no checkpoint)"
"$BENCH" --threads=4 --out="$WORK/ref" >/dev/null

echo "== checkpointed run, SIGTERM mid-flight"
"$BENCH" --threads=4 --out="$WORK/victim" --checkpoint="$WORK/ckpt" >/dev/null &
PID=$!
sleep 0.4
kill -TERM "$PID" 2>/dev/null || true
set +e
wait "$PID"
STATUS=$?
set -e
echo "   interrupted run exited $STATUS"
if [[ $STATUS -ne 75 && $STATUS -ne 0 ]]; then
  echo "FAIL: expected exit 75 (interrupted, resumable) or 0 (finished first), got $STATUS"
  exit 1
fi

SAVED=$(find "$WORK/ckpt" -name 'shard-*.json' | wc -l)
echo "   $SAVED shard checkpoint(s) persisted"

echo "== resume"
"$BENCH" --threads=4 --out="$WORK/resumed" --checkpoint="$WORK/ckpt" --resume \
  | grep -E "fault tolerance" || true

echo "== compare artifacts (throughput section carries wall-clock and is ignored)"
python3 - "$WORK/ref/montecarlo_validation.json" \
          "$WORK/resumed/montecarlo_validation.json" <<'EOF'
import json, sys
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
a.pop("throughput", None)
b.pop("throughput", None)
sa, sb = (json.dumps(x, sort_keys=True) for x in (a, b))
if sa != sb:
    sys.exit("FAIL: resumed artifact differs from uninterrupted reference")
print("   artifacts identical outside throughput")
EOF

echo "PASS: crash-resume produced a byte-identical artifact"
