#!/usr/bin/env bash
# One-command reproduction of the paper's tables and figures.
#
# Builds the Release tree, runs every artifact-emitting bench at its
# default seed, diffs each artifact against the checked-in golden under
# bench/golden/ (tools/artifact_diff: integer counters compare exactly,
# floats within --rtol, wall-clock sections ignored), and prints the
# paper-vs-measured table collected from the artifacts' paper_comparison
# sections. See docs/repro.md for the golden-recording workflow.
#
# usage: scripts/repro.sh [--quick] [--record] [--threads=N] [--jobs=N]
#                         [--rtol=X] [--build-dir=DIR] [--skip-build]
#                         [--no-deltas]
#
#   --quick       analytical + fast Monte-Carlo subset (what CI runs):
#                 skips the three wall-clock-heavy benches
#   --record      overwrite bench/golden/ with this run's artifacts
#                 instead of diffing
#   --threads=N   pool width for the engine-backed benches (results are
#                 bit-identical for any N; default: all hardware threads)
#   --jobs=N      run each engine-backed bench as a fleet of N processes
#                 (tools/fleet) splitting shards through a shared
#                 checkpoint store; artifacts stay bit-identical to N=1.
#                 An interrupted run (^C -> exit 75) keeps its checkpoints
#                 and resumes on rerun.
#   --rtol=X      relative tolerance for float-shaped numbers
#                 (default 1e-9: absorbs libm/toolchain ulp drift while
#                 integer counters stay exact)
#   --build-dir=DIR  build tree to use (default build-release)
#   --skip-build  use existing binaries in the build tree as-is
#   --no-deltas   skip the paper-vs-measured summary table
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
RECORD=0
SKIP_BUILD=0
DELTAS=1
THREADS=""
JOBS=1
RTOL=1e-9
BUILD_DIR=build-release
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    --record) RECORD=1 ;;
    --skip-build) SKIP_BUILD=1 ;;
    --no-deltas) DELTAS=0 ;;
    --threads=*) THREADS="${arg#--threads=}" ;;
    --jobs=*) JOBS="${arg#--jobs=}" ;;
    --rtol=*) RTOL="${arg#--rtol=}" ;;
    --build-dir=*) BUILD_DIR="${arg#--build-dir=}" ;;
    --help|-h) sed -n '2,25p' "$0"; exit 0 ;;
    *) echo "repro.sh: unknown argument '$arg'" >&2; exit 2 ;;
  esac
done

GOLDEN_DIR=bench/golden
OUT_DIR=bench/out
# Checkpoints live *outside* OUT_DIR so an interrupted run (exit 75) keeps
# them for the resume; removed again once the whole run succeeds.
CKPT_DIR=bench/out.ckpt

# name | engine column | in --quick | extra ignore globs
#   engine column: T = full engine contract (--threads --checkpoint --fleet),
#                  t = --threads only (no checkpoint store),
#                  . = neither.
# (the "throughput" wall-clock section is always ignored).
BENCHES="
table1_ber          . . .
table2_ecc_fit      . . .
table3_sdc          T . .
table4_sram_vmin    . . .
fig3_sdr_cases      . . .
fig7_mttf           T . .
fig8_performance    . slow .
fig9_edp            t slow .
table8_scrub        . . metrics.scrub.sweep_wall_ns
table9_cache_size   . . .
table10_delta       . . .
table11_baselines   T . .
table12_hiecc       . . .
correction_latency  . . .
codec_throughput    . slow result.rows[*].iters,result.rows[*].seconds,result.rows[*].mb_per_s,result.rows[*].speedup_vs_reference,result.rows[*].speedup_vs_per_line
montecarlo_validation T . .
ablation_group_size . . .
ablation_features   T . .
ablation_inner_ecc  . . .
scrub_bandwidth     . . metrics.scrub.sweep_wall_ns
scenario_matrix     T slow .
frontier_pareto     T . .
"

if [ "$SKIP_BUILD" -eq 0 ]; then
  echo "== configure + build ($BUILD_DIR, Release) =="
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target \
    $(echo "$BENCHES" | awk 'NF {print "bench_" $1}') \
    bench_service_throughput artifact_diff fleet >/dev/null
fi

if [ "$JOBS" -gt 1 ] && [ ! -x "$BUILD_DIR/tools/fleet" ]; then
  echo "repro.sh: --jobs=$JOBS needs $BUILD_DIR/tools/fleet (POSIX only)" >&2
  exit 2
fi

DIFF_TOOL="$BUILD_DIR/tools/artifact_diff"
[ -x "$DIFF_TOOL" ] || { echo "repro.sh: $DIFF_TOOL not built" >&2; exit 2; }

rm -rf "$OUT_DIR"
FAILED=""
RUN=0
echo
echo "== run benches =="
while read -r name engine speed ignores; do
  [ -n "$name" ] || continue
  if [ "$QUICK" -eq 1 ] && [ "$speed" = "slow" ]; then
    echo "  skip  $name (--quick)"
    continue
  fi
  ARGS=(--out="$OUT_DIR")
  if [ "$engine" != "." ] && [ -n "$THREADS" ]; then
    ARGS+=(--threads="$THREADS")
  fi
  echo "  run   $name"
  STATUS=0
  if [ "$engine" = "T" ] && [ "$JOBS" -gt 1 ]; then
    # Fleet mode: N processes split the shards through a shared checkpoint
    # store; every finisher runs the same deterministic merge, so the
    # artifact is bit-identical to the single-process run. --resume makes
    # a rerun after an interrupt pick up the kept checkpoints.
    "$BUILD_DIR/tools/fleet" --jobs="$JOBS" -- \
      "$BUILD_DIR/bench/bench_$name" "${ARGS[@]}" \
      --checkpoint="$CKPT_DIR/$name" --fleet --resume \
      >/dev/null 2>/dev/null || STATUS=$?
  elif [ "$engine" = "T" ]; then
    "$BUILD_DIR/bench/bench_$name" "${ARGS[@]}" \
      --checkpoint="$CKPT_DIR/$name" --resume >/dev/null || STATUS=$?
  else
    "$BUILD_DIR/bench/bench_$name" "${ARGS[@]}" >/dev/null || STATUS=$?
  fi
  if [ "$STATUS" -eq 75 ]; then
    # EX_TEMPFAIL: the worker checkpointed its finished shards and stopped.
    # Distinct from a hard failure — nothing is wrong, the run is resumable.
    echo "repro.sh: bench_$name interrupted (exit 75); checkpoints kept in $CKPT_DIR/" >&2
    echo "repro.sh: rerun the same command to resume where it stopped" >&2
    exit 75
  elif [ "$STATUS" -ne 0 ]; then
    echo "repro.sh: bench_$name failed (exit $STATUS)" >&2
    FAILED="$FAILED $name(run)"
    continue
  fi
  RUN=$((RUN + 1))
  if [ "$RECORD" -eq 1 ]; then
    mkdir -p "$GOLDEN_DIR"
    cp "$OUT_DIR/$name.json" "$GOLDEN_DIR/$name.json"
    continue
  fi
  if [ ! -f "$GOLDEN_DIR/$name.json" ]; then
    echo "repro.sh: no golden for $name (record with --record)" >&2
    FAILED="$FAILED $name(missing-golden)"
    continue
  fi
  IGNORE_FLAGS=(--ignore=throughput)
  if [ "$ignores" != "." ]; then
    for pat in ${ignores//,/ }; do IGNORE_FLAGS+=(--ignore="$pat"); done
  fi
  if ! "$DIFF_TOOL" --rtol="$RTOL" "${IGNORE_FLAGS[@]}" \
       "$GOLDEN_DIR/$name.json" "$OUT_DIR/$name.json"; then
    FAILED="$FAILED $name(diff)"
  fi
done <<EOF
$BENCHES
EOF

# The concurrent-service bench is host-timing (QPS/latency depend on the
# machine), so it is checked for *schema*, not numbers: the golden pins the
# sweep's shape (row identity fields, config) while every measured field,
# the merged metrics and the wall-clock section are ignored. Always the
# --quick sweep, so the row set matches the recorded golden.
echo "  run   service_throughput (schema only)"
if ! "$BUILD_DIR/bench/bench_service_throughput" --quick --out="$OUT_DIR" >/dev/null; then
  echo "repro.sh: bench_service_throughput failed" >&2
  FAILED="$FAILED service_throughput(run)"
elif [ "$RECORD" -eq 1 ]; then
  RUN=$((RUN + 1))
  mkdir -p "$GOLDEN_DIR"
  cp "$OUT_DIR/service_throughput.json" "$GOLDEN_DIR/service_throughput.json"
elif [ ! -f "$GOLDEN_DIR/service_throughput.json" ]; then
  echo "repro.sh: no golden for service_throughput (record with --record)" >&2
  FAILED="$FAILED service_throughput(missing-golden)"
elif ! "$DIFF_TOOL" --rtol="$RTOL" --ignore=throughput --ignore=metrics \
       --ignore='result.rows[*].measured' \
       "$GOLDEN_DIR/service_throughput.json" "$OUT_DIR/service_throughput.json"; then
  FAILED="$FAILED service_throughput(diff)"
else
  RUN=$((RUN + 1))
fi

if [ "$RECORD" -eq 1 ]; then
  echo
  echo "recorded $RUN goldens under $GOLDEN_DIR/"
fi

if [ "$DELTAS" -eq 1 ]; then
  echo
  echo "== paper vs measured (from artifact paper_comparison sections) =="
  python3 scripts/paper_deltas.py "$OUT_DIR"/*.json
fi

if [ -n "$FAILED" ]; then
  echo
  echo "repro.sh: FAILED:$FAILED" >&2
  exit 1
fi
rm -rf "$CKPT_DIR"
echo
if [ "$RECORD" -eq 1 ]; then
  echo "repro.sh: OK ($RUN goldens recorded)"
else
  echo "repro.sh: OK ($RUN benches matched golden artifacts)"
fi
