#!/usr/bin/env bash
# One-command reproduction of the paper's tables and figures.
#
# Builds the Release tree, runs every artifact-emitting bench at its
# default seed, diffs each artifact against the checked-in golden under
# bench/golden/ (tools/artifact_diff: integer counters compare exactly,
# floats within --rtol, wall-clock sections ignored), and prints the
# paper-vs-measured table collected from the artifacts' paper_comparison
# sections. See docs/repro.md for the golden-recording workflow.
#
# usage: scripts/repro.sh [--quick] [--record] [--threads=N] [--rtol=X]
#                         [--build-dir=DIR] [--skip-build] [--no-deltas]
#
#   --quick       analytical + fast Monte-Carlo subset (what CI runs):
#                 skips the three wall-clock-heavy benches
#   --record      overwrite bench/golden/ with this run's artifacts
#                 instead of diffing
#   --threads=N   pool width for the engine-backed benches (results are
#                 bit-identical for any N; default: all hardware threads)
#   --rtol=X      relative tolerance for float-shaped numbers
#                 (default 1e-9: absorbs libm/toolchain ulp drift while
#                 integer counters stay exact)
#   --build-dir=DIR  build tree to use (default build-release)
#   --skip-build  use existing binaries in the build tree as-is
#   --no-deltas   skip the paper-vs-measured summary table
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
RECORD=0
SKIP_BUILD=0
DELTAS=1
THREADS=""
RTOL=1e-9
BUILD_DIR=build-release
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    --record) RECORD=1 ;;
    --skip-build) SKIP_BUILD=1 ;;
    --no-deltas) DELTAS=0 ;;
    --threads=*) THREADS="${arg#--threads=}" ;;
    --rtol=*) RTOL="${arg#--rtol=}" ;;
    --build-dir=*) BUILD_DIR="${arg#--build-dir=}" ;;
    --help|-h) sed -n '2,25p' "$0"; exit 0 ;;
    *) echo "repro.sh: unknown argument '$arg'" >&2; exit 2 ;;
  esac
done

GOLDEN_DIR=bench/golden
OUT_DIR=bench/out

# name | engine-backed (takes --threads) | in --quick | extra ignore globs
# (the "throughput" wall-clock section is always ignored).
BENCHES="
table1_ber          . . .
table2_ecc_fit      . . .
table3_sdc          T . .
table4_sram_vmin    . . .
fig3_sdr_cases      . . .
fig7_mttf           . . .
fig8_performance    . slow .
fig9_edp            T slow .
table8_scrub        . . metrics.scrub.sweep_wall_ns
table9_cache_size   . . .
table10_delta       . . .
table11_baselines   T . .
table12_hiecc       . . .
correction_latency  . . .
codec_throughput    . slow result.rows[*].iters,result.rows[*].seconds,result.rows[*].mb_per_s,result.rows[*].speedup_vs_reference,result.rows[*].speedup_vs_per_line
montecarlo_validation T . .
ablation_group_size . . .
ablation_features   T . .
ablation_inner_ecc  . . .
scrub_bandwidth     . . metrics.scrub.sweep_wall_ns
"

if [ "$SKIP_BUILD" -eq 0 ]; then
  echo "== configure + build ($BUILD_DIR, Release) =="
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target \
    $(echo "$BENCHES" | awk 'NF {print "bench_" $1}') \
    bench_service_throughput artifact_diff >/dev/null
fi

DIFF_TOOL="$BUILD_DIR/tools/artifact_diff"
[ -x "$DIFF_TOOL" ] || { echo "repro.sh: $DIFF_TOOL not built" >&2; exit 2; }

rm -rf "$OUT_DIR"
FAILED=""
RUN=0
echo
echo "== run benches =="
while read -r name engine speed ignores; do
  [ -n "$name" ] || continue
  if [ "$QUICK" -eq 1 ] && [ "$speed" = "slow" ]; then
    echo "  skip  $name (--quick)"
    continue
  fi
  ARGS=(--out="$OUT_DIR")
  if [ "$engine" = "T" ] && [ -n "$THREADS" ]; then
    ARGS+=(--threads="$THREADS")
  fi
  echo "  run   $name"
  if ! "$BUILD_DIR/bench/bench_$name" "${ARGS[@]}" >/dev/null; then
    echo "repro.sh: bench_$name failed" >&2
    FAILED="$FAILED $name(run)"
    continue
  fi
  RUN=$((RUN + 1))
  if [ "$RECORD" -eq 1 ]; then
    mkdir -p "$GOLDEN_DIR"
    cp "$OUT_DIR/$name.json" "$GOLDEN_DIR/$name.json"
    continue
  fi
  if [ ! -f "$GOLDEN_DIR/$name.json" ]; then
    echo "repro.sh: no golden for $name (record with --record)" >&2
    FAILED="$FAILED $name(missing-golden)"
    continue
  fi
  IGNORE_FLAGS=(--ignore=throughput)
  if [ "$ignores" != "." ]; then
    for pat in ${ignores//,/ }; do IGNORE_FLAGS+=(--ignore="$pat"); done
  fi
  if ! "$DIFF_TOOL" --rtol="$RTOL" "${IGNORE_FLAGS[@]}" \
       "$GOLDEN_DIR/$name.json" "$OUT_DIR/$name.json"; then
    FAILED="$FAILED $name(diff)"
  fi
done <<EOF
$BENCHES
EOF

# The concurrent-service bench is host-timing (QPS/latency depend on the
# machine), so it is checked for *schema*, not numbers: the golden pins the
# sweep's shape (row identity fields, config) while every measured field,
# the merged metrics and the wall-clock section are ignored. Always the
# --quick sweep, so the row set matches the recorded golden.
echo "  run   service_throughput (schema only)"
if ! "$BUILD_DIR/bench/bench_service_throughput" --quick --out="$OUT_DIR" >/dev/null; then
  echo "repro.sh: bench_service_throughput failed" >&2
  FAILED="$FAILED service_throughput(run)"
elif [ "$RECORD" -eq 1 ]; then
  RUN=$((RUN + 1))
  mkdir -p "$GOLDEN_DIR"
  cp "$OUT_DIR/service_throughput.json" "$GOLDEN_DIR/service_throughput.json"
elif [ ! -f "$GOLDEN_DIR/service_throughput.json" ]; then
  echo "repro.sh: no golden for service_throughput (record with --record)" >&2
  FAILED="$FAILED service_throughput(missing-golden)"
elif ! "$DIFF_TOOL" --rtol="$RTOL" --ignore=throughput --ignore=metrics \
       --ignore='result.rows[*].measured' \
       "$GOLDEN_DIR/service_throughput.json" "$OUT_DIR/service_throughput.json"; then
  FAILED="$FAILED service_throughput(diff)"
else
  RUN=$((RUN + 1))
fi

if [ "$RECORD" -eq 1 ]; then
  echo
  echo "recorded $RUN goldens under $GOLDEN_DIR/"
fi

if [ "$DELTAS" -eq 1 ]; then
  echo
  echo "== paper vs measured (from artifact paper_comparison sections) =="
  python3 scripts/paper_deltas.py "$OUT_DIR"/*.json
fi

if [ -n "$FAILED" ]; then
  echo
  echo "repro.sh: FAILED:$FAILED" >&2
  exit 1
fi
echo
if [ "$RECORD" -eq 1 ]; then
  echo "repro.sh: OK ($RUN goldens recorded)"
else
  echo "repro.sh: OK ($RUN benches matched golden artifacts)"
fi
