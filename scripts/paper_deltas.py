#!/usr/bin/env python3
"""Print the paper-vs-measured table from bench artifacts.

Each artifact may carry result.paper_comparison: a list of rows
{quantity, paper, measured}. `paper` is a number when the paper states
one, or a string (">1e14", "3.49-3.9", "~1.01") when it doesn't; numeric
rows get a measured/paper ratio, string rows are printed verbatim.
Reads artifact paths from argv, writes one aligned table per artifact.
"""
import json
import sys


def fmt(v):
    if isinstance(v, str):
        return v
    if not isinstance(v, (int, float)):
        return "-"
    if v == 0:
        return "0"
    a = abs(v)
    if 0.01 <= a < 1e5:
        return f"{v:.4g}"
    return f"{v:.3e}"


def main(paths):
    for path in sorted(paths):
        try:
            with open(path) as f:
                artifact = json.load(f)
        except (OSError, ValueError) as e:
            print(f"  {path}: unreadable ({e})", file=sys.stderr)
            continue
        # Not every bench compares against a paper number (the frontier
        # sweep explores beyond the paper's two design points): skip
        # artifacts without a paper_comparison section, and tolerate any
        # non-table shape the section might take.
        result = artifact.get("result")
        rows = result.get("paper_comparison") if isinstance(result, dict) else None
        if not isinstance(rows, list) or not rows:
            continue
        print(f"\n  {artifact.get('experiment', path)}")
        for row in rows:
            if not isinstance(row, dict):
                continue
            paper, measured = row.get("paper"), row.get("measured")
            ratio = ""
            if isinstance(paper, (int, float)) and paper and measured is not None:
                ratio = f"x{measured / paper:.3g}"
            print(f"    {row.get('quantity', '?'):<46} paper {fmt(paper):>12}"
                  f"   measured {fmt(measured):>12}   {ratio}")


if __name__ == "__main__":
    main(sys.argv[1:])
