#!/usr/bin/env bash
# Frontier Pareto smoke check (docs/frontier.md), run in CI against the
# Release build:
#
#   1. quick frontier run, single-threaded -> artifact must match the
#      checked-in golden outside the wall-clock "throughput" section
#   2. the same run at --threads=8 -> byte-identical artifact (the MC
#      cross-check shards on per-trial seed streams; analytical rows and
#      timing sims are pure functions of the config)
#   3. checkpointed run SIGTERM'd mid-flight -> exit 75 ("interrupted,
#      resumable") or 0, then --resume -> byte-identical artifact again
#
# Usage: scripts/ci_frontier_smoke.sh <path-to-bench_frontier_pareto> \
#          <path-to-artifact_diff> <path-to-golden-dir>
set -euo pipefail

BENCH=${1:?usage: $0 <bench_frontier_pareto> <artifact_diff> <golden-dir>}
DIFF=${2:?usage: $0 <bench_frontier_pareto> <artifact_diff> <golden-dir>}
GOLDEN=${3:?usage: $0 <bench_frontier_pareto> <artifact_diff> <golden-dir>}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

echo "== quick frontier, 1 thread, vs golden"
"$BENCH" --quick --threads=1 --out="$WORK/t1" >/dev/null
"$DIFF" --ignore=throughput "$GOLDEN/frontier_pareto_quick.json" \
  "$WORK/t1/frontier_pareto_quick.json"

echo "== quick frontier, 8 threads, must be byte-identical"
"$BENCH" --quick --threads=8 --out="$WORK/t8" >/dev/null
python3 - "$WORK/t1/frontier_pareto_quick.json" \
          "$WORK/t8/frontier_pareto_quick.json" <<'EOF'
import json, sys
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
a.pop("throughput", None)
b.pop("throughput", None)
if json.dumps(a, sort_keys=True) != json.dumps(b, sort_keys=True):
    sys.exit("FAIL: --threads=8 artifact differs from --threads=1")
print("   thread-count invariant")
EOF

echo "== checkpointed run, SIGTERM mid-flight"
"$BENCH" --quick --threads=2 --out="$WORK/victim" --checkpoint="$WORK/ckpt" >/dev/null &
PID=$!
sleep 0.2
kill -TERM "$PID" 2>/dev/null || true
set +e
wait "$PID"
STATUS=$?
set -e
echo "   interrupted run exited $STATUS"
if [[ $STATUS -ne 75 && $STATUS -ne 0 ]]; then
  echo "FAIL: expected exit 75 (interrupted, resumable) or 0 (finished first), got $STATUS"
  exit 1
fi

echo "== resume, then vs golden again"
"$BENCH" --quick --threads=8 --out="$WORK/resumed" \
  --checkpoint="$WORK/ckpt" --resume >/dev/null
"$DIFF" --ignore=throughput "$GOLDEN/frontier_pareto_quick.json" \
  "$WORK/resumed/frontier_pareto_quick.json"

echo "PASS: frontier Pareto deterministic across threads, kill and resume"
