#!/usr/bin/env bash
# Fleet end-to-end check (docs/fleet.md), run in CI against the Release
# build:
#
#   1. uninterrupted single-process reference run
#   2. fleet of 2 workers (tools/fleet) on a shared checkpoint store; one
#      worker is SIGTERM'd mid-flight -> the launcher must respawn it with
#      --resume and the fleet must still finish cleanly
#   3. fleet of 4 workers, fresh store, no interference
#   4. both fleet artifacts must equal the reference byte-for-byte outside
#      the wall-clock "throughput" section
#
# Usage: scripts/ci_fleet_smoke.sh <bench_montecarlo_validation> <fleet> <artifact_diff>
set -euo pipefail

BENCH=${1:?usage: $0 <bench_montecarlo_validation> <fleet> <artifact_diff>}
FLEET=${2:?usage: $0 <bench_montecarlo_validation> <fleet> <artifact_diff>}
DIFF=${3:?usage: $0 <bench_montecarlo_validation> <fleet> <artifact_diff>}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# --scale=2 lengthens the run enough that the mid-flight kill reliably
# lands while shards are still open.
SCALE=2

echo "== reference run (single process, no checkpoint)"
"$BENCH" --scale=$SCALE --out="$WORK/ref" >/dev/null

echo "== fleet of 2, one worker killed mid-flight"
"$FLEET" --jobs=2 -- \
  "$BENCH" --scale=$SCALE --checkpoint="$WORK/ckpt2" --fleet \
  --out="$WORK/fleet2" >/dev/null 2>"$WORK/fleet2.log" &
LAUNCHER=$!
# The launcher logs each worker's pid; grab one once it appears.
VICTIM=""
for _ in $(seq 1 50); do
  VICTIM=$(grep -oE 'worker 1 started \(pid [0-9]+' "$WORK/fleet2.log" \
             | grep -oE '[0-9]+$' || true)
  [ -n "$VICTIM" ] && break
  sleep 0.1
done
[ -n "$VICTIM" ] || { echo "FAIL: never saw worker 1 start"; exit 1; }
sleep 0.7
kill -TERM "$VICTIM" 2>/dev/null \
  && echo "   SIGTERM'd worker pid $VICTIM" \
  || echo "   worker $VICTIM already finished (kill raced completion)"
set +e
wait "$LAUNCHER"
STATUS=$?
set -e
echo "   fleet exited $STATUS"
sed 's/^/   | /' "$WORK/fleet2.log"
if [[ $STATUS -ne 0 ]]; then
  echo "FAIL: fleet of 2 with a killed worker should still finish cleanly"
  exit 1
fi

echo "== fleet of 4, fresh store"
"$FLEET" --jobs=4 -- \
  "$BENCH" --scale=$SCALE --checkpoint="$WORK/ckpt4" --fleet \
  --out="$WORK/fleet4" >/dev/null 2>"$WORK/fleet4.log"
grep -c "finished" "$WORK/fleet4.log" >/dev/null

echo "== compare artifacts (throughput carries wall-clock and is ignored)"
"$DIFF" --ignore=throughput \
  "$WORK/ref/montecarlo_validation.json" "$WORK/fleet2/montecarlo_validation.json"
echo "   fleet of 2 (with kill+respawn) identical to single-process"
"$DIFF" --ignore=throughput \
  "$WORK/ref/montecarlo_validation.json" "$WORK/fleet4/montecarlo_validation.json"
echo "   fleet of 4 identical to single-process"

echo "PASS: fleet runs produced byte-identical artifacts"
