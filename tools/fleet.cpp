// Fleet launcher: spawn N copies of one worker command against a shared
// checkpoint store and keep the fleet at strength until the experiment
// completes.
//
//   fleet --jobs=N [--max-restarts=M] -- <worker command...>
//
// The worker command is expected to be an engine-backed bench invoked with
// --checkpoint=DIR --fleet: each process claims shards through the
// checkpoint store's work queue (src/exp/work_queue.h), so N processes
// split one campaign and every finisher runs the same deterministic merge.
// The launcher's job is purely supervision:
//
//   exit 0   worker finished (artifact written) — not respawned
//   exit 75  worker checkpointed and stopped (SIGINT/SIGTERM, EX_TEMPFAIL)
//            — respawned with --resume until --max-restarts is exhausted
//   SIGTERM/SIGINT/SIGKILL death — treated like exit 75: the worker lost
//            its in-flight shard only (siblings steal its stale claim
//            after the lease), so a respawn rejoins cleanly
//   anything else — hard failure; the rest of the fleet keeps running
//            (the experiment still completes — claims are released or go
//            stale) but the launcher reports it and exits 1
//
// The launcher itself forwards SIGINT/SIGTERM to the whole fleet, waits,
// and exits 75 so a supervising script can resume the entire fleet.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

namespace {

constexpr int kExitResumable = 75;  // EX_TEMPFAIL, same code the benches use

volatile std::sig_atomic_t g_interrupted = 0;
void on_signal(int) { g_interrupted = 1; }

struct Worker {
  pid_t pid = -1;
  int restarts = 0;
  bool finished = false;  // exit 0 seen
  bool failed = false;    // hard failure seen
};

pid_t spawn(const std::vector<std::string>& cmd) {
  std::vector<char*> argv;
  argv.reserve(cmd.size() + 1);
  for (const auto& a : cmd) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  const pid_t pid = fork();
  if (pid == 0) {
    execvp(argv[0], argv.data());
    std::perror("fleet: execvp");
    _exit(127);
  }
  return pid;
}

bool resumable_signal(int sig) {
  return sig == SIGTERM || sig == SIGINT || sig == SIGKILL || sig == SIGHUP;
}

int usage() {
  std::fprintf(stderr,
               "usage: fleet --jobs=N [--max-restarts=M] -- <worker command...>\n"
               "\n"
               "Runs N copies of the worker command; the workers coordinate\n"
               "through a shared checkpoint store, so the command should be an\n"
               "engine-backed bench with --checkpoint=DIR --fleet. Workers that\n"
               "exit 75 (interrupted, checkpointed) or die from SIGTERM/SIGINT/\n"
               "SIGKILL are respawned with --resume, up to M times each\n"
               "(default 4). Exit: 0 all workers finished, 75 fleet interrupted\n"
               "(resumable), 1 hard worker failure or restarts exhausted.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 0;
  int max_restarts = 4;
  std::vector<std::string> cmd;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--") {
      ++i;
      break;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--max-restarts=", 0) == 0) {
      max_restarts = std::atoi(arg.c_str() + 15);
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "fleet: unknown argument '%s'\n", arg.c_str());
      return usage();
    }
  }
  for (; i < argc; ++i) cmd.emplace_back(argv[i]);
  if (jobs < 1 || cmd.empty()) return usage();

  // Respawn command: same invocation plus --resume, so a rejoining worker
  // replays its own finished shards instantly instead of waiting to adopt
  // them through the queue.
  std::vector<std::string> resume_cmd = cmd;
  bool has_resume = false;
  for (const auto& a : cmd) has_resume = has_resume || a == "--resume";
  if (!has_resume) resume_cmd.emplace_back("--resume");

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  std::vector<Worker> fleet(static_cast<std::size_t>(jobs));
  for (auto& w : fleet) {
    w.pid = spawn(cmd);
    std::fprintf(stderr, "fleet: worker %ld started (pid %ld)\n",
                 static_cast<long>(&w - fleet.data()), static_cast<long>(w.pid));
  }

  bool forwarded = false;
  int running = jobs;
  bool hard_failure = false;
  while (running > 0) {
    if (g_interrupted && !forwarded) {
      std::fprintf(stderr, "fleet: interrupted — forwarding to %d worker(s)\n",
                   running);
      for (const auto& w : fleet) {
        if (!w.finished && !w.failed && w.pid > 0) kill(w.pid, SIGTERM);
      }
      forwarded = true;
    }
    int status = 0;
    const pid_t pid = waitpid(-1, &status, 0);
    if (pid < 0) {
      if (errno == EINTR) continue;  // signal arrived — loop to forward it
      break;                         // no children left (shouldn't happen)
    }
    Worker* w = nullptr;
    for (auto& cand : fleet) {
      if (cand.pid == pid) w = &cand;
    }
    if (w == nullptr) continue;  // not ours
    const long id = w - fleet.data();

    bool resumable = false;
    if (WIFEXITED(status)) {
      const int code = WEXITSTATUS(status);
      if (code == 0) {
        std::fprintf(stderr, "fleet: worker %ld finished\n", id);
        w->finished = true;
        --running;
        continue;
      }
      resumable = code == kExitResumable;
      if (!resumable) {
        std::fprintf(stderr, "fleet: worker %ld failed (exit %d)\n", id, code);
      }
    } else if (WIFSIGNALED(status)) {
      resumable = resumable_signal(WTERMSIG(status));
      if (!resumable) {
        std::fprintf(stderr, "fleet: worker %ld killed by signal %d\n", id,
                     WTERMSIG(status));
      }
    }

    if (resumable && !forwarded && w->restarts < max_restarts) {
      ++w->restarts;
      w->pid = spawn(resume_cmd);
      std::fprintf(stderr,
                   "fleet: worker %ld resumable exit — respawned with --resume "
                   "(pid %ld, restart %d/%d)\n",
                   id, static_cast<long>(w->pid), w->restarts, max_restarts);
      continue;
    }
    if (resumable && forwarded) {
      // Fleet-wide shutdown in progress: the worker checkpointed, don't
      // bring it back.
      --running;
      continue;
    }
    if (resumable) {
      std::fprintf(stderr, "fleet: worker %ld out of restarts (%d)\n", id,
                   max_restarts);
    }
    w->failed = true;
    hard_failure = true;
    --running;
  }

  if (forwarded) {
    std::fprintf(stderr, "fleet: interrupted — resume with the same command\n");
    return kExitResumable;
  }
  int ok = 0;
  for (const auto& w : fleet) ok += w.finished ? 1 : 0;
  if (hard_failure) {
    std::fprintf(stderr, "fleet: %d/%d workers finished, with failures\n", ok,
                 jobs);
    return 1;
  }
  std::fprintf(stderr, "fleet: all %d workers finished\n", jobs);
  return 0;
}
