// Thin CLI over exp::artifact_diff_main (see src/exp/artifact_diff.h):
// compares a bench/out artifact against its bench/golden reference with
// exact integers, rel-tolerant floats, and glob ignore patterns for the
// wall-clock sections. Driven by scripts/repro.sh and the paper-repro CI
// job; exits 0 identical / 1 differing / 2 error.
#include "exp/artifact_diff.h"

int main(int argc, char** argv) {
  return sudoku::exp::artifact_diff_main(argc, argv);
}
