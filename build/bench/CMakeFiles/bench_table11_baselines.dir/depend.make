# Empty dependencies file for bench_table11_baselines.
# This may be replaced when dependencies are built.
