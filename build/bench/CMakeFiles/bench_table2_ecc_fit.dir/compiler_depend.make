# Empty compiler generated dependencies file for bench_table2_ecc_fit.
# This may be replaced when dependencies are built.
