file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_ecc_fit.dir/bench_table2_ecc_fit.cpp.o"
  "CMakeFiles/bench_table2_ecc_fit.dir/bench_table2_ecc_fit.cpp.o.d"
  "bench_table2_ecc_fit"
  "bench_table2_ecc_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ecc_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
