# Empty dependencies file for bench_correction_latency.
# This may be replaced when dependencies are built.
