file(REMOVE_RECURSE
  "CMakeFiles/bench_correction_latency.dir/bench_correction_latency.cpp.o"
  "CMakeFiles/bench_correction_latency.dir/bench_correction_latency.cpp.o.d"
  "bench_correction_latency"
  "bench_correction_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_correction_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
