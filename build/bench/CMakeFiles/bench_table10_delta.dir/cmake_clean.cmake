file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_delta.dir/bench_table10_delta.cpp.o"
  "CMakeFiles/bench_table10_delta.dir/bench_table10_delta.cpp.o.d"
  "bench_table10_delta"
  "bench_table10_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
