# Empty compiler generated dependencies file for bench_table10_delta.
# This may be replaced when dependencies are built.
