file(REMOVE_RECURSE
  "CMakeFiles/bench_montecarlo_validation.dir/bench_montecarlo_validation.cpp.o"
  "CMakeFiles/bench_montecarlo_validation.dir/bench_montecarlo_validation.cpp.o.d"
  "bench_montecarlo_validation"
  "bench_montecarlo_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_montecarlo_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
