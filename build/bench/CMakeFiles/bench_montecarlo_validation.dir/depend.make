# Empty dependencies file for bench_montecarlo_validation.
# This may be replaced when dependencies are built.
