file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_mttf.dir/bench_fig7_mttf.cpp.o"
  "CMakeFiles/bench_fig7_mttf.dir/bench_fig7_mttf.cpp.o.d"
  "bench_fig7_mttf"
  "bench_fig7_mttf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_mttf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
