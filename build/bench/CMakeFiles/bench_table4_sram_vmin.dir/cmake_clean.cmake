file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_sram_vmin.dir/bench_table4_sram_vmin.cpp.o"
  "CMakeFiles/bench_table4_sram_vmin.dir/bench_table4_sram_vmin.cpp.o.d"
  "bench_table4_sram_vmin"
  "bench_table4_sram_vmin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_sram_vmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
