# Empty compiler generated dependencies file for bench_table4_sram_vmin.
# This may be replaced when dependencies are built.
