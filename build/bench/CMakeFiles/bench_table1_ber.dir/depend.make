# Empty dependencies file for bench_table1_ber.
# This may be replaced when dependencies are built.
