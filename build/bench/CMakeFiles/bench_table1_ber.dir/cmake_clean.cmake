file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_ber.dir/bench_table1_ber.cpp.o"
  "CMakeFiles/bench_table1_ber.dir/bench_table1_ber.cpp.o.d"
  "bench_table1_ber"
  "bench_table1_ber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_ber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
