file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_sdc.dir/bench_table3_sdc.cpp.o"
  "CMakeFiles/bench_table3_sdc.dir/bench_table3_sdc.cpp.o.d"
  "bench_table3_sdc"
  "bench_table3_sdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_sdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
