# Empty compiler generated dependencies file for bench_fig3_sdr_cases.
# This may be replaced when dependencies are built.
