file(REMOVE_RECURSE
  "CMakeFiles/bench_scrub_bandwidth.dir/bench_scrub_bandwidth.cpp.o"
  "CMakeFiles/bench_scrub_bandwidth.dir/bench_scrub_bandwidth.cpp.o.d"
  "bench_scrub_bandwidth"
  "bench_scrub_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scrub_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
