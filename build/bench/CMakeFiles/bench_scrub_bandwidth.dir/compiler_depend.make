# Empty compiler generated dependencies file for bench_scrub_bandwidth.
# This may be replaced when dependencies are built.
