file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_scrub.dir/bench_table8_scrub.cpp.o"
  "CMakeFiles/bench_table8_scrub.dir/bench_table8_scrub.cpp.o.d"
  "bench_table8_scrub"
  "bench_table8_scrub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_scrub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
