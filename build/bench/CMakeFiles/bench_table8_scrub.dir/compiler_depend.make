# Empty compiler generated dependencies file for bench_table8_scrub.
# This may be replaced when dependencies are built.
