# Empty compiler generated dependencies file for bench_fig9_edp.
# This may be replaced when dependencies are built.
