# Empty dependencies file for bench_table12_hiecc.
# This may be replaced when dependencies are built.
