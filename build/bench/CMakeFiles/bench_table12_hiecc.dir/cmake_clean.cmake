file(REMOVE_RECURSE
  "CMakeFiles/bench_table12_hiecc.dir/bench_table12_hiecc.cpp.o"
  "CMakeFiles/bench_table12_hiecc.dir/bench_table12_hiecc.cpp.o.d"
  "bench_table12_hiecc"
  "bench_table12_hiecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table12_hiecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
