
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cache_model.cpp" "tests/CMakeFiles/test_cache_model.dir/test_cache_model.cpp.o" "gcc" "tests/CMakeFiles/test_cache_model.dir/test_cache_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/energy/CMakeFiles/sudoku_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sudoku_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/sudoku_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/sudoku_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/sudoku_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/sudoku/CMakeFiles/sudoku_core.dir/DependInfo.cmake"
  "/root/repo/build/src/raid/CMakeFiles/sudoku_raid.dir/DependInfo.cmake"
  "/root/repo/build/src/sttram/CMakeFiles/sudoku_sttram.dir/DependInfo.cmake"
  "/root/repo/build/src/codes/CMakeFiles/sudoku_codes.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sudoku_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
