file(REMOVE_RECURSE
  "CMakeFiles/test_crc31.dir/test_crc31.cpp.o"
  "CMakeFiles/test_crc31.dir/test_crc31.cpp.o.d"
  "test_crc31"
  "test_crc31.pdb"
  "test_crc31[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crc31.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
