# Empty dependencies file for test_crc31.
# This may be replaced when dependencies are built.
