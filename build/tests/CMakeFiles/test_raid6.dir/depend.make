# Empty dependencies file for test_raid6.
# This may be replaced when dependencies are built.
