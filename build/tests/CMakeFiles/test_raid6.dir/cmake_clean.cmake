file(REMOVE_RECURSE
  "CMakeFiles/test_raid6.dir/test_raid6.cpp.o"
  "CMakeFiles/test_raid6.dir/test_raid6.cpp.o.d"
  "test_raid6"
  "test_raid6.pdb"
  "test_raid6[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raid6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
