# Empty dependencies file for test_crc_analysis.
# This may be replaced when dependencies are built.
