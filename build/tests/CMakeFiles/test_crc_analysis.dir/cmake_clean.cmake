file(REMOVE_RECURSE
  "CMakeFiles/test_crc_analysis.dir/test_crc_analysis.cpp.o"
  "CMakeFiles/test_crc_analysis.dir/test_crc_analysis.cpp.o.d"
  "test_crc_analysis"
  "test_crc_analysis.pdb"
  "test_crc_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
