# Empty compiler generated dependencies file for test_inner_ecc.
# This may be replaced when dependencies are built.
