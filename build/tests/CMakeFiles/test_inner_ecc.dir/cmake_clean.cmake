file(REMOVE_RECURSE
  "CMakeFiles/test_inner_ecc.dir/test_inner_ecc.cpp.o"
  "CMakeFiles/test_inner_ecc.dir/test_inner_ecc.cpp.o.d"
  "test_inner_ecc"
  "test_inner_ecc.pdb"
  "test_inner_ecc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inner_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
