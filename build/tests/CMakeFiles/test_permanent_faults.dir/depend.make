# Empty dependencies file for test_permanent_faults.
# This may be replaced when dependencies are built.
