file(REMOVE_RECURSE
  "CMakeFiles/test_permanent_faults.dir/test_permanent_faults.cpp.o"
  "CMakeFiles/test_permanent_faults.dir/test_permanent_faults.cpp.o.d"
  "test_permanent_faults"
  "test_permanent_faults.pdb"
  "test_permanent_faults[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_permanent_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
