file(REMOVE_RECURSE
  "CMakeFiles/test_gf2poly.dir/test_gf2poly.cpp.o"
  "CMakeFiles/test_gf2poly.dir/test_gf2poly.cpp.o.d"
  "test_gf2poly"
  "test_gf2poly.pdb"
  "test_gf2poly[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gf2poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
