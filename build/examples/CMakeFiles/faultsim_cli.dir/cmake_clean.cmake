file(REMOVE_RECURSE
  "CMakeFiles/faultsim_cli.dir/faultsim_cli.cpp.o"
  "CMakeFiles/faultsim_cli.dir/faultsim_cli.cpp.o.d"
  "faultsim_cli"
  "faultsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faultsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
