# Empty compiler generated dependencies file for faultsim_cli.
# This may be replaced when dependencies are built.
