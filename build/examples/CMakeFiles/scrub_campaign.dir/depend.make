# Empty dependencies file for scrub_campaign.
# This may be replaced when dependencies are built.
