file(REMOVE_RECURSE
  "CMakeFiles/scrub_campaign.dir/scrub_campaign.cpp.o"
  "CMakeFiles/scrub_campaign.dir/scrub_campaign.cpp.o.d"
  "scrub_campaign"
  "scrub_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrub_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
