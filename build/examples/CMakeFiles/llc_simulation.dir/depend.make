# Empty dependencies file for llc_simulation.
# This may be replaced when dependencies are built.
