file(REMOVE_RECURSE
  "CMakeFiles/llc_simulation.dir/llc_simulation.cpp.o"
  "CMakeFiles/llc_simulation.dir/llc_simulation.cpp.o.d"
  "llc_simulation"
  "llc_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llc_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
