file(REMOVE_RECURSE
  "CMakeFiles/sudoku_raid.dir/raid6.cpp.o"
  "CMakeFiles/sudoku_raid.dir/raid6.cpp.o.d"
  "CMakeFiles/sudoku_raid.dir/rdp.cpp.o"
  "CMakeFiles/sudoku_raid.dir/rdp.cpp.o.d"
  "libsudoku_raid.a"
  "libsudoku_raid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sudoku_raid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
