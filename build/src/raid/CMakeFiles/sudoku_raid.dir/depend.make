# Empty dependencies file for sudoku_raid.
# This may be replaced when dependencies are built.
