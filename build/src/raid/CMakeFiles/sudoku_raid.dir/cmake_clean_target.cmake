file(REMOVE_RECURSE
  "libsudoku_raid.a"
)
