
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/raid/raid6.cpp" "src/raid/CMakeFiles/sudoku_raid.dir/raid6.cpp.o" "gcc" "src/raid/CMakeFiles/sudoku_raid.dir/raid6.cpp.o.d"
  "/root/repo/src/raid/rdp.cpp" "src/raid/CMakeFiles/sudoku_raid.dir/rdp.cpp.o" "gcc" "src/raid/CMakeFiles/sudoku_raid.dir/rdp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sudoku_common.dir/DependInfo.cmake"
  "/root/repo/build/src/codes/CMakeFiles/sudoku_codes.dir/DependInfo.cmake"
  "/root/repo/build/src/sttram/CMakeFiles/sudoku_sttram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
