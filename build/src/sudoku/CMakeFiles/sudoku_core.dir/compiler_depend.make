# Empty compiler generated dependencies file for sudoku_core.
# This may be replaced when dependencies are built.
