file(REMOVE_RECURSE
  "CMakeFiles/sudoku_core.dir/controller.cpp.o"
  "CMakeFiles/sudoku_core.dir/controller.cpp.o.d"
  "CMakeFiles/sudoku_core.dir/line_codec.cpp.o"
  "CMakeFiles/sudoku_core.dir/line_codec.cpp.o.d"
  "CMakeFiles/sudoku_core.dir/scrubber.cpp.o"
  "CMakeFiles/sudoku_core.dir/scrubber.cpp.o.d"
  "CMakeFiles/sudoku_core.dir/storage.cpp.o"
  "CMakeFiles/sudoku_core.dir/storage.cpp.o.d"
  "libsudoku_core.a"
  "libsudoku_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sudoku_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
