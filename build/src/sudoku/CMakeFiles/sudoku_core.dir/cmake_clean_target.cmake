file(REMOVE_RECURSE
  "libsudoku_core.a"
)
