file(REMOVE_RECURSE
  "libsudoku_common.a"
)
