file(REMOVE_RECURSE
  "CMakeFiles/sudoku_common.dir/bitvec.cpp.o"
  "CMakeFiles/sudoku_common.dir/bitvec.cpp.o.d"
  "CMakeFiles/sudoku_common.dir/prob.cpp.o"
  "CMakeFiles/sudoku_common.dir/prob.cpp.o.d"
  "CMakeFiles/sudoku_common.dir/rng.cpp.o"
  "CMakeFiles/sudoku_common.dir/rng.cpp.o.d"
  "libsudoku_common.a"
  "libsudoku_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sudoku_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
