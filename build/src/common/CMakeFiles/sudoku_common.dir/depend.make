# Empty dependencies file for sudoku_common.
# This may be replaced when dependencies are built.
