# Empty dependencies file for sudoku_codes.
# This may be replaced when dependencies are built.
