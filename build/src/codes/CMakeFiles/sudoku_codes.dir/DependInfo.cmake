
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codes/bch.cpp" "src/codes/CMakeFiles/sudoku_codes.dir/bch.cpp.o" "gcc" "src/codes/CMakeFiles/sudoku_codes.dir/bch.cpp.o.d"
  "/root/repo/src/codes/crc31.cpp" "src/codes/CMakeFiles/sudoku_codes.dir/crc31.cpp.o" "gcc" "src/codes/CMakeFiles/sudoku_codes.dir/crc31.cpp.o.d"
  "/root/repo/src/codes/crc_analysis.cpp" "src/codes/CMakeFiles/sudoku_codes.dir/crc_analysis.cpp.o" "gcc" "src/codes/CMakeFiles/sudoku_codes.dir/crc_analysis.cpp.o.d"
  "/root/repo/src/codes/gf2m.cpp" "src/codes/CMakeFiles/sudoku_codes.dir/gf2m.cpp.o" "gcc" "src/codes/CMakeFiles/sudoku_codes.dir/gf2m.cpp.o.d"
  "/root/repo/src/codes/gf2poly.cpp" "src/codes/CMakeFiles/sudoku_codes.dir/gf2poly.cpp.o" "gcc" "src/codes/CMakeFiles/sudoku_codes.dir/gf2poly.cpp.o.d"
  "/root/repo/src/codes/hamming.cpp" "src/codes/CMakeFiles/sudoku_codes.dir/hamming.cpp.o" "gcc" "src/codes/CMakeFiles/sudoku_codes.dir/hamming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sudoku_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
