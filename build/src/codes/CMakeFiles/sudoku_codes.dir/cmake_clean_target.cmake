file(REMOVE_RECURSE
  "libsudoku_codes.a"
)
