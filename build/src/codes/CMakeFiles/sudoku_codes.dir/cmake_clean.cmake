file(REMOVE_RECURSE
  "CMakeFiles/sudoku_codes.dir/bch.cpp.o"
  "CMakeFiles/sudoku_codes.dir/bch.cpp.o.d"
  "CMakeFiles/sudoku_codes.dir/crc31.cpp.o"
  "CMakeFiles/sudoku_codes.dir/crc31.cpp.o.d"
  "CMakeFiles/sudoku_codes.dir/crc_analysis.cpp.o"
  "CMakeFiles/sudoku_codes.dir/crc_analysis.cpp.o.d"
  "CMakeFiles/sudoku_codes.dir/gf2m.cpp.o"
  "CMakeFiles/sudoku_codes.dir/gf2m.cpp.o.d"
  "CMakeFiles/sudoku_codes.dir/gf2poly.cpp.o"
  "CMakeFiles/sudoku_codes.dir/gf2poly.cpp.o.d"
  "CMakeFiles/sudoku_codes.dir/hamming.cpp.o"
  "CMakeFiles/sudoku_codes.dir/hamming.cpp.o.d"
  "libsudoku_codes.a"
  "libsudoku_codes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sudoku_codes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
