# Empty dependencies file for sudoku_reliability.
# This may be replaced when dependencies are built.
