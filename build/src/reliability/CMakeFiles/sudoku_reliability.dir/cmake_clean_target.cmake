file(REMOVE_RECURSE
  "libsudoku_reliability.a"
)
