file(REMOVE_RECURSE
  "CMakeFiles/sudoku_reliability.dir/analytical.cpp.o"
  "CMakeFiles/sudoku_reliability.dir/analytical.cpp.o.d"
  "CMakeFiles/sudoku_reliability.dir/montecarlo.cpp.o"
  "CMakeFiles/sudoku_reliability.dir/montecarlo.cpp.o.d"
  "libsudoku_reliability.a"
  "libsudoku_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sudoku_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
