file(REMOVE_RECURSE
  "CMakeFiles/sudoku_cache.dir/cache_model.cpp.o"
  "CMakeFiles/sudoku_cache.dir/cache_model.cpp.o.d"
  "libsudoku_cache.a"
  "libsudoku_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sudoku_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
