# Empty dependencies file for sudoku_cache.
# This may be replaced when dependencies are built.
