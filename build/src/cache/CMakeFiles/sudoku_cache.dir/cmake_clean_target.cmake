file(REMOVE_RECURSE
  "libsudoku_cache.a"
)
