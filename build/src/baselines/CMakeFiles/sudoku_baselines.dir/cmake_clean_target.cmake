file(REMOVE_RECURSE
  "libsudoku_baselines.a"
)
