# Empty compiler generated dependencies file for sudoku_baselines.
# This may be replaced when dependencies are built.
