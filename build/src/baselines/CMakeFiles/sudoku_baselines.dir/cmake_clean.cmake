file(REMOVE_RECURSE
  "CMakeFiles/sudoku_baselines.dir/cppc_cache.cpp.o"
  "CMakeFiles/sudoku_baselines.dir/cppc_cache.cpp.o.d"
  "CMakeFiles/sudoku_baselines.dir/ecck_cache.cpp.o"
  "CMakeFiles/sudoku_baselines.dir/ecck_cache.cpp.o.d"
  "CMakeFiles/sudoku_baselines.dir/hiecc_cache.cpp.o"
  "CMakeFiles/sudoku_baselines.dir/hiecc_cache.cpp.o.d"
  "CMakeFiles/sudoku_baselines.dir/mc_runner.cpp.o"
  "CMakeFiles/sudoku_baselines.dir/mc_runner.cpp.o.d"
  "CMakeFiles/sudoku_baselines.dir/raid6_cache.cpp.o"
  "CMakeFiles/sudoku_baselines.dir/raid6_cache.cpp.o.d"
  "CMakeFiles/sudoku_baselines.dir/twodp_cache.cpp.o"
  "CMakeFiles/sudoku_baselines.dir/twodp_cache.cpp.o.d"
  "libsudoku_baselines.a"
  "libsudoku_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sudoku_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
