file(REMOVE_RECURSE
  "libsudoku_energy.a"
)
