# Empty dependencies file for sudoku_energy.
# This may be replaced when dependencies are built.
