file(REMOVE_RECURSE
  "CMakeFiles/sudoku_energy.dir/energy_model.cpp.o"
  "CMakeFiles/sudoku_energy.dir/energy_model.cpp.o.d"
  "libsudoku_energy.a"
  "libsudoku_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sudoku_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
