# Empty compiler generated dependencies file for sudoku_energy.
# This may be replaced when dependencies are built.
