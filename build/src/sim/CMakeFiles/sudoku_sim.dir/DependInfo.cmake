
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/dram.cpp" "src/sim/CMakeFiles/sudoku_sim.dir/dram.cpp.o" "gcc" "src/sim/CMakeFiles/sudoku_sim.dir/dram.cpp.o.d"
  "/root/repo/src/sim/timing_sim.cpp" "src/sim/CMakeFiles/sudoku_sim.dir/timing_sim.cpp.o" "gcc" "src/sim/CMakeFiles/sudoku_sim.dir/timing_sim.cpp.o.d"
  "/root/repo/src/sim/trace_io.cpp" "src/sim/CMakeFiles/sudoku_sim.dir/trace_io.cpp.o" "gcc" "src/sim/CMakeFiles/sudoku_sim.dir/trace_io.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/sim/CMakeFiles/sudoku_sim.dir/workload.cpp.o" "gcc" "src/sim/CMakeFiles/sudoku_sim.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sudoku_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/sudoku_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
