file(REMOVE_RECURSE
  "libsudoku_sim.a"
)
