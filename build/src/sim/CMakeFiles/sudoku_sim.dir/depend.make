# Empty dependencies file for sudoku_sim.
# This may be replaced when dependencies are built.
