file(REMOVE_RECURSE
  "CMakeFiles/sudoku_sim.dir/dram.cpp.o"
  "CMakeFiles/sudoku_sim.dir/dram.cpp.o.d"
  "CMakeFiles/sudoku_sim.dir/timing_sim.cpp.o"
  "CMakeFiles/sudoku_sim.dir/timing_sim.cpp.o.d"
  "CMakeFiles/sudoku_sim.dir/trace_io.cpp.o"
  "CMakeFiles/sudoku_sim.dir/trace_io.cpp.o.d"
  "CMakeFiles/sudoku_sim.dir/workload.cpp.o"
  "CMakeFiles/sudoku_sim.dir/workload.cpp.o.d"
  "libsudoku_sim.a"
  "libsudoku_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sudoku_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
