
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sttram/device_model.cpp" "src/sttram/CMakeFiles/sudoku_sttram.dir/device_model.cpp.o" "gcc" "src/sttram/CMakeFiles/sudoku_sttram.dir/device_model.cpp.o.d"
  "/root/repo/src/sttram/fault_injector.cpp" "src/sttram/CMakeFiles/sudoku_sttram.dir/fault_injector.cpp.o" "gcc" "src/sttram/CMakeFiles/sudoku_sttram.dir/fault_injector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sudoku_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
