file(REMOVE_RECURSE
  "libsudoku_sttram.a"
)
