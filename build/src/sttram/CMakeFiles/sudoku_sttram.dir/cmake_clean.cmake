file(REMOVE_RECURSE
  "CMakeFiles/sudoku_sttram.dir/device_model.cpp.o"
  "CMakeFiles/sudoku_sttram.dir/device_model.cpp.o.d"
  "CMakeFiles/sudoku_sttram.dir/fault_injector.cpp.o"
  "CMakeFiles/sudoku_sttram.dir/fault_injector.cpp.o.d"
  "libsudoku_sttram.a"
  "libsudoku_sttram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sudoku_sttram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
