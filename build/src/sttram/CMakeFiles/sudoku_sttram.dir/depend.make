# Empty dependencies file for sudoku_sttram.
# This may be replaced when dependencies are built.
